"""Admission policies, scarcity pricing, and the per-AS controller."""

import pytest

from repro.admission import (
    AdmissionController,
    AdmissionRequest,
    CapacityCalendar,
    FirstComeFirstServed,
    FlatPricer,
    OverbookingPolicy,
    ProportionalShare,
    ScarcityPricer,
)


class TestFirstComeFirstServed:
    def test_arrival_order_wins(self):
        policy = FirstComeFirstServed()
        calendar = CapacityCalendar(1000)
        first = policy.admit(calendar, AdmissionRequest(600, 0, 100, "early"))
        second = policy.admit(calendar, AdmissionRequest(600, 0, 100, "late"))
        assert first.admitted and not second.admitted
        assert "only 400 kbps free" in second.reason

    def test_release_undoes_admission(self):
        policy = FirstComeFirstServed()
        calendar = CapacityCalendar(1000)
        decision = policy.admit(calendar, AdmissionRequest(600, 0, 100))
        policy.release(calendar, decision)
        assert policy.admit(calendar, AdmissionRequest(1000, 0, 100)).admitted

    def test_admit_batch_matches_sequential(self):
        requests = [
            AdmissionRequest(400, 0, 100, f"b{i}") for i in range(5)
        ] + [AdmissionRequest(400, 100, 200, "late")]
        policy = FirstComeFirstServed()
        batched = CapacityCalendar(1000)
        sequential = CapacityCalendar(1000)
        batch_decisions = policy.admit_batch(batched, requests)
        loop_decisions = [policy.admit(sequential, r) for r in requests]
        assert [d.admitted for d in batch_decisions] == [d.admitted for d in loop_decisions]
        # 2 of the 5 overlapping fit (800 of 1000), the disjoint one fits.
        assert [d.admitted for d in batch_decisions] == [True, True, False, False, False, True]

    def test_admit_batch_empty(self):
        assert FirstComeFirstServed().admit_batch(CapacityCalendar(10), []) == []


class TestProportionalShare:
    def test_caps_single_buyer(self):
        policy = ProportionalShare(max_fraction=0.5)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(400, 0, 100, "whale")).admitted
        hit_cap = policy.admit(calendar, AdmissionRequest(200, 0, 100, "whale"))
        assert not hit_cap.admitted
        assert "share cap" in hit_cap.reason
        # A different buyer still gets the remaining capacity.
        assert policy.admit(calendar, AdmissionRequest(200, 0, 100, "minnow")).admitted

    def test_cap_is_per_window(self):
        policy = ProportionalShare(max_fraction=0.5)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(500, 0, 100, "whale")).admitted
        # Same buyer, disjoint time: the share cap applies per window.
        assert policy.admit(calendar, AdmissionRequest(500, 100, 200, "whale")).admitted

    def test_global_capacity_still_enforced(self):
        policy = ProportionalShare(max_fraction=1.0)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(900, 0, 100, "a")).admitted
        assert not policy.admit(calendar, AdmissionRequest(200, 0, 100, "b")).admitted

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            ProportionalShare(0)
        with pytest.raises(ValueError):
            ProportionalShare(1.5)


class TestOverbooking:
    def test_admits_beyond_capacity_up_to_factor(self):
        policy = OverbookingPolicy(factor=2.0)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(1500, 0, 100)).admitted
        assert policy.admit(calendar, AdmissionRequest(500, 0, 100)).admitted
        assert not policy.admit(calendar, AdmissionRequest(1, 0, 100)).admitted

    def test_factor_one_is_plain_capacity(self):
        policy = OverbookingPolicy(factor=1.0)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(1000, 0, 100)).admitted
        assert not policy.admit(calendar, AdmissionRequest(1, 0, 100)).admitted

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            OverbookingPolicy(0.5)


class TestPricing:
    def test_empty_interface_is_base_price(self):
        pricer = ScarcityPricer()
        assert pricer.multiplier(0.0) == 1.0
        assert pricer.price(50, 0.0) == 50

    def test_multiplier_monotone_in_utilization(self):
        pricer = ScarcityPricer()
        values = [pricer.multiplier(u / 10) for u in range(11)]
        assert values == sorted(values)
        assert values[-1] == pricer.max_multiplier

    def test_capped_at_max_multiplier(self):
        pricer = ScarcityPricer(max_multiplier=10.0)
        assert pricer.multiplier(0.9999) == 10.0
        assert pricer.multiplier(2.0) == 10.0  # overbooked utilization > 1

    def test_vectorized_matches_scalar(self):
        pricer = ScarcityPricer()
        utilizations = [0.0, 0.3, 0.75, 0.99, 1.0]
        vector = pricer.multipliers(utilizations)
        assert vector.tolist() == pytest.approx(
            [pricer.multiplier(u) for u in utilizations]
        )

    def test_price_rounds_up_and_floors_at_one(self):
        pricer = ScarcityPricer(alpha=0.5)
        assert pricer.price(50, 0.5) == 63  # 50 * 1.25 = 62.5 -> ceil
        assert FlatPricer().price(0, 0.9) == 1

    def test_price_exact_above_float_precision(self):
        # Regression: base * multiplier through float silently dropped the
        # low bits of bases above 2^53 — 10^17 + 1 quoted 10^17 at
        # multiplier 1.0, undercharging every unit sold.
        base = 10**17 + 1
        assert FlatPricer().price(base, 0.9) == base
        assert ScarcityPricer().price(base, 0.0) == base  # multiplier == 1.0
        # Non-unit multipliers stay exact too: ceil(base * 1.25) in ints.
        pricer = ScarcityPricer(alpha=0.5)
        assert pricer.price(base, 0.5) == -(-base * 5 // 4)


class TestController:
    def test_layers_are_independent(self):
        controller = AdmissionController(1000)
        assert controller.admit_issue(1, True, 800, 0, 100).admitted
        # The active layer still has full headroom for the same window.
        assert controller.admit_reservation(1, True, 800, 0, 100).admitted
        assert not controller.admit_issue(1, True, 300, 0, 100).admitted
        assert controller.rejections == 1

    def test_directions_are_independent(self):
        controller = AdmissionController(1000)
        assert controller.admit_issue(1, True, 1000, 0, 100).admitted
        assert controller.admit_issue(1, False, 1000, 0, 100).admitted

    def test_per_interface_capacity_override(self):
        controller = AdmissionController(1000, capacities={(7, True): 100})
        assert not controller.admit_issue(7, True, 500, 0, 100).admitted
        assert controller.admit_issue(8, True, 500, 0, 100).admitted

    def test_quote_tracks_worse_layer(self):
        controller = AdmissionController(1000, pricer=ScarcityPricer())
        base = controller.quote(50, 1, True, 0, 100)
        assert base == 50
        controller.admit_reservation(1, True, 900, 0, 100)
        assert controller.quote(50, 1, True, 0, 100) > 50

    def test_release_and_expire(self):
        controller = AdmissionController(1000)
        decision = controller.admit_issue(1, True, 800, 0, 100)
        controller.release(1, True, decision.commitment)
        assert controller.admit_issue(1, True, 1000, 0, 100).admitted
        assert controller.expire(200) == 1
        assert controller.calendar(1, True).commitment_count == 0

    def test_unknown_layer_rejected(self):
        controller = AdmissionController(1000)
        with pytest.raises(ValueError):
            controller.calendar(1, True, layer="imaginary")


class TestOverbookingShareCap:
    """Regression sweep: share caps must survive the switch to overbooking."""

    def test_share_cap_is_against_physical_capacity(self):
        # The overbooked limit is 2000 kbps, but the link is still 1000:
        # a 50% share cap means 500, not 1000.
        policy = OverbookingPolicy(factor=2.0, max_fraction=0.5)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(500, 0, 100, "whale")).admitted
        denied = policy.admit(calendar, AdmissionRequest(1, 0, 100, "whale"))
        assert not denied.admitted
        assert "physical" in denied.reason
        # Other buyers still enjoy the overbooked limit.
        assert policy.admit(calendar, AdmissionRequest(500, 0, 100, "b")).admitted
        assert policy.admit(calendar, AdmissionRequest(500, 0, 100, "c")).admitted
        assert policy.admit(calendar, AdmissionRequest(500, 0, 100, "d")).admitted
        assert not policy.admit(calendar, AdmissionRequest(1, 0, 100, "e")).admitted

    def test_cap_is_per_window_under_overbooking(self):
        policy = OverbookingPolicy(factor=1.5, max_fraction=0.5)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(500, 0, 100, "whale")).admitted
        assert policy.admit(calendar, AdmissionRequest(500, 100, 200, "whale")).admitted

    def test_no_cap_by_default(self):
        policy = OverbookingPolicy(factor=1.5)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(1400, 0, 100, "whale")).admitted

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            OverbookingPolicy(1.5, max_fraction=0)
        with pytest.raises(ValueError):
            OverbookingPolicy(1.5, max_fraction=1.1)

    def test_controller_share_cap_survives_overbooking_policies(self):
        # isinstance(ProportionalShare) used to drop the cap silently the
        # moment an AS overbooked; duck-typing on max_fraction keeps it.
        capped = AdmissionController(
            1000, policy=OverbookingPolicy(1.5, max_fraction=0.25)
        )
        assert capped.share_cap_kbps(1, True) == 250
        uncapped = AdmissionController(1000, policy=OverbookingPolicy(1.5))
        assert uncapped.share_cap_kbps(1, True) is None
        proportional = AdmissionController(1000, policy=ProportionalShare(0.25))
        assert proportional.share_cap_kbps(1, True) == 250
