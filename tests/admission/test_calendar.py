"""Capacity calendar: step-function accounting, bulk path, commitment surgery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.admission import AdmissionRejected, CapacityCalendar


class TestPointOperations:
    def test_empty_calendar_has_zero_commitment(self):
        calendar = CapacityCalendar(1000)
        assert calendar.peak_commitment(0, 100) == 0
        assert calendar.headroom(0, 100) == 1000
        assert calendar.utilization(0, 100) == 0.0

    def test_admit_tracks_peak(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(600, 0, 100)
        assert calendar.peak_commitment(0, 100) == 600
        assert calendar.peak_commitment(50, 150) == 600
        assert calendar.peak_commitment(100, 200) == 0  # half-open: ends at 100

    def test_overlapping_windows_stack(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(400, 0, 100)
        calendar.admit(400, 50, 150)
        assert calendar.peak_commitment(0, 150) == 800
        assert calendar.peak_commitment(0, 50) == 400
        assert calendar.peak_commitment(100, 150) == 400

    def test_over_capacity_rejected(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(600, 0, 100)
        with pytest.raises(AdmissionRejected):
            calendar.admit(600, 50, 150)
        # The failed admit left no residue.
        assert calendar.peak_commitment(0, 200) == 600
        # Disjoint in time still fits.
        calendar.admit(600, 100, 200)

    def test_exact_fill_admitted(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(1000, 0, 100)
        assert calendar.headroom(0, 100) == 0

    def test_release_restores_headroom(self):
        calendar = CapacityCalendar(1000)
        commitment = calendar.admit(800, 0, 100)
        calendar.release(commitment.commitment_id)
        assert calendar.peak_commitment(0, 100) == 0
        assert calendar.boundary_count == 0  # change points fully coalesced
        with pytest.raises(KeyError):
            calendar.release(commitment.commitment_id)

    def test_release_interior_window(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(100, 0, 300)
        inner = calendar.admit(200, 100, 200)
        calendar.release(inner.commitment_id)
        assert calendar.peak_commitment(0, 300) == 100
        assert calendar.boundary_count == 2  # only [0, 300) edges remain

    def test_mean_commitment_is_time_weighted(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(400, 0, 100)
        assert calendar.mean_commitment(0, 200) == pytest.approx(200.0)
        assert calendar.mean_commitment(0, 100) == pytest.approx(400.0)

    def test_invalid_inputs(self):
        calendar = CapacityCalendar(1000)
        with pytest.raises(ValueError):
            calendar.peak_commitment(10, 10)
        with pytest.raises(ValueError):
            calendar.admit(0, 0, 10)
        with pytest.raises(ValueError):
            calendar.admit(10, 5, 5)
        with pytest.raises(ValueError):
            CapacityCalendar(0)

    def test_float_bandwidth_coerced_and_drains_to_zero(self):
        """Commit and release must move the same value: a float input is
        coerced once, so release leaves no fractional residue."""
        calendar = CapacityCalendar(1000)
        commitment = calendar.admit(100.7, 0, 10)
        assert commitment.bandwidth_kbps == 100
        assert calendar.peak_commitment(0, 10) == 100
        calendar.release(commitment.commitment_id)
        assert calendar.peak_commitment(0, 10) == 0
        assert calendar.boundary_count == 0

    def test_expire_releases_ended_commitments(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(100, 0, 50)
        keep = calendar.admit(100, 0, 200)
        assert calendar.expire(100) == 1
        assert calendar.commitment_count == 1
        assert calendar.get(keep.commitment_id) is keep

    def test_tag_peak_isolates_one_owner(self):
        calendar = CapacityCalendar(1000)
        calendar.admit(300, 0, 100, tag="alice")
        calendar.admit(200, 50, 150, tag="alice")
        calendar.admit(400, 0, 150, tag="bob")
        assert calendar.tag_peak("alice", 0, 150) == 500
        assert calendar.tag_peak("bob", 0, 150) == 400
        assert calendar.tag_peak("carol", 0, 150) == 0


class TestCommitmentSurgery:
    def test_split_time_preserves_profile(self):
        calendar = CapacityCalendar(1000)
        commitment = calendar.admit(400, 0, 100, tag="alice")
        first, second = calendar.split_time(commitment.commitment_id, 40)
        assert (first.start, first.end) == (0, 40)
        assert (second.start, second.end) == (40, 100)
        assert calendar.peak_commitment(0, 100) == 400
        calendar.release(second.commitment_id)
        assert calendar.peak_commitment(0, 40) == 400
        assert calendar.peak_commitment(40, 100) == 0

    def test_split_bandwidth_preserves_profile(self):
        calendar = CapacityCalendar(1000)
        commitment = calendar.admit(400, 0, 100)
        first, second = calendar.split_bandwidth(commitment.commitment_id, 150)
        assert first.bandwidth_kbps == 250 and second.bandwidth_kbps == 150
        assert calendar.peak_commitment(0, 100) == 400
        calendar.release(second.commitment_id)
        assert calendar.peak_commitment(0, 100) == 250

    def test_fuse_time_adjacent(self):
        calendar = CapacityCalendar(1000)
        commitment = calendar.admit(400, 0, 100)
        first, second = calendar.split_time(commitment.commitment_id, 40)
        fused = calendar.fuse(first.commitment_id, second.commitment_id)
        assert (fused.start, fused.end, fused.bandwidth_kbps) == (0, 100, 400)
        assert calendar.commitment_count == 1

    def test_fuse_same_window(self):
        calendar = CapacityCalendar(1000)
        a = calendar.admit(100, 0, 50)
        b = calendar.admit(200, 0, 50)
        fused = calendar.fuse(a.commitment_id, b.commitment_id)
        assert fused.bandwidth_kbps == 300
        assert calendar.peak_commitment(0, 50) == 300

    def test_fuse_incompatible_rejected(self):
        calendar = CapacityCalendar(1000)
        a = calendar.admit(100, 0, 50)
        b = calendar.admit(200, 60, 90)
        with pytest.raises(ValueError):
            calendar.fuse(a.commitment_id, b.commitment_id)
        assert calendar.commitment_count == 2

    def test_invalid_split_leaves_commitment_intact(self):
        calendar = CapacityCalendar(1000)
        commitment = calendar.admit(400, 0, 100)
        with pytest.raises(ValueError):
            calendar.split_time(commitment.commitment_id, 100)
        with pytest.raises(ValueError):
            calendar.split_bandwidth(commitment.commitment_id, 400)
        assert calendar.get(commitment.commitment_id) is commitment

    def test_transfer_changes_tag_only(self):
        calendar = CapacityCalendar(1000)
        commitment = calendar.admit(400, 0, 100, tag="alice")
        moved = calendar.transfer(commitment.commitment_id, "bob")
        assert moved.commitment_id == commitment.commitment_id
        assert calendar.tag_peak("bob", 0, 100) == 400
        assert calendar.tag_peak("alice", 0, 100) == 0


class TestBulkPath:
    def test_bulk_matches_scalar(self):
        rng = np.random.default_rng(7)
        calendar = CapacityCalendar(10**9)
        for _ in range(200):
            start = int(rng.integers(0, 1000))
            calendar.commit(int(rng.integers(1, 50)), start, start + int(rng.integers(1, 100)))
        starts = rng.integers(0, 1100, 400).astype(float)
        ends = starts + rng.integers(1, 120, 400)
        bulk = calendar.bulk_peak(starts, ends)
        scalar = [calendar.peak_commitment(s, e) for s, e in zip(starts, ends)]
        assert bulk.tolist() == scalar

    def test_bulk_matches_scalar_across_block_boundaries(self):
        """Wide windows overlap thousands of boundaries, so the two-level
        range maximum exercises whole blocks, not just block edges."""
        rng = np.random.default_rng(3)
        calendar = CapacityCalendar(10**9)
        starts = rng.uniform(0, 10_000, 5000)
        calendar.commit_batch(
            rng.integers(1, 50, 5000), starts, starts + rng.uniform(1, 500, 5000),
            track=False,
        )
        qs = rng.uniform(0, 11_000, 100)
        qe = qs + rng.uniform(1, 5000, 100)
        bulk = calendar.bulk_peak(qs, qe)
        scalar = [calendar.peak_commitment(s, e) for s, e in zip(qs, qe)]
        assert bulk.tolist() == scalar

    def test_bulk_cache_invalidated_by_mutation(self):
        calendar = CapacityCalendar(1000)
        calendar.commit(100, 0, 100)
        assert calendar.bulk_peak([0.0], [50.0]).tolist() == [100]
        calendar.commit(200, 0, 100)
        assert calendar.bulk_peak([0.0], [50.0]).tolist() == [300]

    def test_bulk_admissible_scalar_and_array_bandwidth(self):
        calendar = CapacityCalendar(1000)
        calendar.commit(600, 0, 100)
        admissible = calendar.bulk_admissible(500, [0.0, 100.0], [50.0, 200.0])
        assert admissible.tolist() == [False, True]
        admissible = calendar.bulk_admissible([400, 1500], [0.0, 100.0], [50.0, 200.0])
        assert admissible.tolist() == [True, False]

    def test_bulk_empty_and_invalid(self):
        calendar = CapacityCalendar(1000)
        assert calendar.bulk_peak([], []).size == 0
        with pytest.raises(ValueError):
            calendar.bulk_peak([0.0], [0.0])
        with pytest.raises(ValueError):
            calendar.bulk_peak([0.0, 1.0], [1.0])

    def test_commit_batch_equals_sequential(self):
        rng = np.random.default_rng(11)
        batch = CapacityCalendar(10**9)
        sequential = CapacityCalendar(10**9)
        bandwidths = rng.integers(1, 50, 150)
        starts = rng.integers(0, 500, 150).astype(float)
        ends = starts + rng.integers(1, 80, 150)
        batch.commit_batch(bandwidths, starts, ends, track=False)
        for bw, s, e in zip(bandwidths, starts, ends):
            sequential.commit(int(bw), float(s), float(e))
        qs = rng.integers(0, 600, 200).astype(float)
        qe = qs + rng.integers(1, 100, 200)
        assert batch.bulk_peak(qs, qe).tolist() == sequential.bulk_peak(qs, qe).tolist()

    def test_commit_batch_on_top_of_existing(self):
        calendar = CapacityCalendar(10**9)
        calendar.commit(100, 0, 100)
        calendar.commit_batch([50, 50], [50.0, 200.0], [150.0, 300.0], track=False)
        assert calendar.peak_commitment(0, 300) == 150
        assert calendar.peak_commitment(200, 300) == 50

    def test_commit_batch_tracked_commitments_releasable(self):
        calendar = CapacityCalendar(1000)
        commitments = calendar.commit_batch([100, 200], [0.0, 0.0], [50.0, 50.0])
        assert calendar.peak_commitment(0, 50) == 300
        calendar.release(commitments[0].commitment_id)
        assert calendar.peak_commitment(0, 50) == 200

    @settings(max_examples=40)
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 100),  # bandwidth
                st.integers(0, 300),  # start
                st.integers(1, 60),  # length
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_peak_matches_brute_force(self, rows):
        """The step function agrees with per-unit-time brute force."""
        calendar = CapacityCalendar(10**9)
        for bandwidth, start, length in rows:
            calendar.commit(bandwidth, start, start + length)
        horizon = max(start + length for _, start, length in rows) + 2
        brute = [0] * horizon
        for bandwidth, start, length in rows:
            for t in range(start, start + length):
                brute[t] += bandwidth
        for window_start in range(0, horizon - 1, 7):
            window_end = min(window_start + 13, horizon)
            expected = max(brute[window_start:window_end])
            assert calendar.peak_commitment(window_start, window_end) == expected
