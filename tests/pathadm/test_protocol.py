"""Two-phase path admission: screen/commit/rollback semantics."""

import pytest

from repro.admission import (
    ACTIVE,
    ISSUED,
    AdmissionController,
    ProportionalShare,
)
from repro.pathadm import (
    COMMITTED,
    HELD,
    REJECTED,
    ROLLED_BACK,
    PathAdmission,
    PathCommitError,
    PathHop,
    calendar_fingerprint,
    controller_fingerprint,
)
from repro.telemetry import ExperimentTelemetry


def make_path(capacities=(1000, 1000, 1000), **controller_kwargs):
    hops = [
        PathHop(f"as{i}", AdmissionController(cap, **controller_kwargs), 1, 2)
        for i, cap in enumerate(capacities)
    ]
    return PathAdmission(hops)


def test_screen_holds_every_hop_both_directions():
    path = make_path()
    ticket = path.screen(600, 0.0, 3600.0, tag="alice")
    assert ticket.state == HELD and ticket.admitted
    assert len(ticket.holds) == 3
    for hold, hop in zip(ticket.holds, path.hops):
        assert [c[:2] for c in hold.claims] == [(1, True), (2, False)]
        for interface, is_ingress, commitment in hold.claims:
            calendar = hop.controller.calendar(interface, is_ingress, ISSUED)
            assert calendar.peak_commitment(0.0, 3600.0) == 600
            assert commitment.tag == "alice"


def test_screen_rejection_releases_upstream_byte_identical():
    path = make_path(capacities=(1000, 1000, 500))
    before = [controller_fingerprint(hop.controller) for hop in path.hops]
    ticket = path.screen(600, 0.0, 3600.0, tag="bob")
    assert ticket.state == REJECTED and not ticket.admitted
    assert ticket.failed_hop == 2
    assert "as2" in ticket.reason
    after = [controller_fingerprint(hop.controller) for hop in path.hops]
    assert after == before


def test_mid_hop_rejection_releases_same_hop_ingress_claim():
    # Capacity asymmetric inside one hop: ingress fits, egress does not.
    controller = AdmissionController(1000, capacities={(2, False): 100})
    path = PathAdmission([PathHop("as0", controller, 1, 2)])
    before = controller_fingerprint(controller)
    ticket = path.screen(600, 0.0, 3600.0)
    assert ticket.state == REJECTED and ticket.failed_hop == 0
    assert controller_fingerprint(controller) == before


def test_commit_without_hook_keeps_holds():
    path = make_path()
    ticket = path.commit(path.screen(600, 0.0, 3600.0))
    assert ticket.state == COMMITTED
    for hop in path.hops:
        assert hop.controller.calendar(1, True, ISSUED).peak_commitment(0, 3600) == 600


def test_commit_hook_runs_in_path_order():
    path = make_path()
    seen = []
    path.commit(
        path.screen(600, 0.0, 3600.0),
        hook=lambda index, hop, hold: seen.append((index, hop.name)),
    )
    assert seen == [(0, "as0"), (1, "as1"), (2, "as2")]


def test_commit_failure_at_hop_k_rolls_back_everything():
    path = make_path()
    before = [controller_fingerprint(hop.controller) for hop in path.hops]

    def explode_at_2(index, hop, hold):
        if index == 2:
            raise RuntimeError("ledger rejected the delivery")

    ticket = path.screen(600, 0.0, 3600.0)
    with pytest.raises(PathCommitError) as err:
        path.commit(ticket, hook=explode_at_2)
    assert err.value.hop_index == 2
    assert ticket.state == ROLLED_BACK and ticket.failed_hop == 2
    after = [controller_fingerprint(hop.controller) for hop in path.hops]
    assert after == before


def test_rollback_restores_capacity_and_is_idempotent():
    path = make_path()
    ticket = path.screen(900, 0.0, 3600.0)
    assert path.screen(900, 0.0, 3600.0).state == REJECTED  # held capacity
    path.rollback(ticket)
    assert ticket.state == ROLLED_BACK
    path.rollback(ticket)  # no-op, must not double-release
    assert path.screen(900, 0.0, 3600.0).state == HELD


def test_rollback_of_committed_ticket_releases_capacity():
    path = make_path()
    ticket = path.commit(path.screen(900, 0.0, 3600.0))
    path.rollback(ticket)
    assert path.screen(900, 0.0, 3600.0).admitted


def test_commit_of_rejected_ticket_raises():
    path = make_path(capacities=(100,))
    ticket = path.screen(600, 0.0, 3600.0)
    with pytest.raises(ValueError):
        path.commit(ticket)


def test_active_layer_screen_uses_active_calendars():
    path = make_path()
    ticket = path.screen(600, 0.0, 3600.0, layer=ACTIVE)
    assert ticket.admitted
    hop = path.hops[0]
    assert hop.controller.calendar(1, True, ACTIVE).peak_commitment(0, 3600) == 600
    assert hop.controller.calendar(1, True, ISSUED).peak_commitment(0, 3600) == 0


def test_heterogeneous_hops_policy_and_sharding():
    hops = [
        PathHop("mono-fcfs", AdmissionController(1000), 1, 2),
        PathHop(
            "sharded-share",
            AdmissionController(
                1000, policy=ProportionalShare(0.5), shard_seconds=600.0
            ),
            3,
            4,
        ),
    ]
    path = PathAdmission(hops)
    assert path.screen(400, 0.0, 3600.0, tag="greedy").admitted
    # Second request breaches the 50% share cap at the sharded hop only.
    ticket = path.screen(400, 0.0, 3600.0, tag="greedy")
    assert ticket.state == REJECTED and ticket.failed_hop == 1
    assert "share cap" in ticket.reason
    # The monolithic hop's provisional hold was released.
    mono = hops[0].controller.calendar(1, True, ISSUED)
    assert mono.peak_commitment(0, 3600) == 400


def test_no_oversell_under_interleaved_paths():
    shared = AdmissionController(1000)
    left = PathAdmission([PathHop("as0", shared, 1, 2)])
    right = PathAdmission([PathHop("as0", shared, 1, 2)])
    tickets = [p.screen(400, 0.0, 3600.0, tag=f"b{i}") for i, p in
               enumerate([left, right, left, right])]
    admitted = [t for t in tickets if t.admitted]
    assert len(admitted) == 2  # 3rd and 4th would oversell 1000 kbps
    assert shared.calendar(1, True, ISSUED).peak_commitment(0, 3600) == 800


def test_screen_emits_spans_and_counters():
    telemetry = ExperimentTelemetry("pathadm_unit")
    with telemetry.activate():
        path = make_path(capacities=(1000, 500))
        trace = telemetry.trace("path_lifecycle")
        from repro.telemetry.tracing import use_trace

        with use_trace(trace):
            ticket = path.screen(600, 0.0, 3600.0)
            assert ticket.state == REJECTED
            held = path.screen(400, 0.0, 3600.0)
            path.commit(held)
            path.rollback(held)
        names = trace.span_names()
        assert names.count("path.screen") == 2
        assert "path.commit" in names and "path.rollback" in names
        assert "admission.decision" in names  # per-hop admits share the trace
        screen = next(s for s in trace.spans if s.name == "path.screen")
        assert screen.attrs["outcome"] == REJECTED
        assert screen.attrs["failed_hop"] == 1
    dump = telemetry.to_dict()
    counters = {
        (family["name"], tuple(child["labels"])): child["value"]
        for family in dump["metrics"]
        if family["kind"] == "counter"
        for child in family["children"]
    }
    assert counters[("pathadm_screen_total", ("rejected",))] == 1.0
    assert counters[("pathadm_screen_total", ("held",))] == 1.0
    assert counters[("pathadm_commit_total", ("committed",))] == 1.0
    assert counters[("pathadm_rollback_total", ())] == 1.0


def test_calendar_fingerprint_detects_state_changes():
    controller = AdmissionController(1000, shard_seconds=600.0)
    baseline = controller_fingerprint(controller)
    decision = controller.admit_issue(1, True, 300, 0.0, 3600.0, tag="x")
    changed = controller_fingerprint(controller)
    assert changed != baseline
    controller.release(1, True, decision.commitment)
    assert controller_fingerprint(controller) == baseline
    # Monolithic calendars fingerprint through the same helper.
    mono = AdmissionController(1000)
    d = mono.admit_issue(1, True, 300, 0.0, 3600.0)
    fp = calendar_fingerprint(mono.calendar(1, True, ISSUED))
    mono.release(1, True, d.commitment)
    assert calendar_fingerprint(mono.calendar(1, True, ISSUED)) != fp
