"""Hypothesis proof of the byte-identical rollback guarantee.

Random paths (hop count, per-hop sharded/monolithic calendars, FCFS or
proportional-share policies, auction and posted allocation modes
interleaved), random pre-populated base load, then a random mix of

* screens that succeed and are rolled back,
* screens that fail at a random hop (capacity asymmetry makes any hop
  the failing one),
* commits whose per-hop effect hook fails at a random hop,
* commits that succeed and are rolled back later,

must leave **every** calendar of every hop byte-identical (per
:func:`repro.pathadm.fingerprint.controller_fingerprint`) to the state
right after pre-population — i.e. as if the paths had never existed.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.admission import (
    ACTIVE,
    ISSUED,
    AdmissionController,
    FirstComeFirstServed,
    ProportionalShare,
)
from repro.pathadm import (
    PathAdmission,
    PathCommitError,
    PathHop,
    controller_fingerprint,
)

WINDOW = 3600.0

hop_strategy = st.fixed_dictionaries(
    {
        "capacity": st.sampled_from([400, 700, 1000]),
        "shard_seconds": st.sampled_from([None, 600.0, 1800.0]),
        "proportional": st.booleans(),
        "auction_mode": st.booleans(),
    }
)

op_strategy = st.fixed_dictionaries(
    {
        "bandwidth": st.integers(min_value=50, max_value=1200),
        "start_slot": st.integers(min_value=0, max_value=5),
        "duration_slots": st.integers(min_value=1, max_value=3),
        "tag": st.sampled_from(["alice", "bob", "carol"]),
        "layer": st.sampled_from([ISSUED, ACTIVE]),
        "action": st.sampled_from(["screen", "commit", "commit_fail"]),
        "fail_hop": st.integers(min_value=0, max_value=3),
    }
)

base_strategy = st.lists(
    st.fixed_dictionaries(
        {
            "bandwidth": st.integers(min_value=20, max_value=200),
            "start_slot": st.integers(min_value=0, max_value=5),
            "hop": st.integers(min_value=0, max_value=3),
            "layer": st.sampled_from([ISSUED, ACTIVE]),
        }
    ),
    max_size=4,
)


def build_path(hop_specs):
    hops = []
    for index, spec in enumerate(hop_specs):
        controller = AdmissionController(
            capacity_kbps=spec["capacity"],
            policy=ProportionalShare(0.6) if spec["proportional"] else FirstComeFirstServed(),
            shard_seconds=spec["shard_seconds"],
            auction_interfaces=True if spec["auction_mode"] else None,
        )
        hops.append(PathHop(f"as{index}", controller, index + 1, index + 2))
    return PathAdmission(hops)


@settings(max_examples=40, deadline=None)
@given(
    hop_specs=st.lists(hop_strategy, min_size=1, max_size=4),
    base_load=base_strategy,
    ops=st.lists(op_strategy, min_size=1, max_size=6),
)
def test_rollback_leaves_every_hop_byte_identical(hop_specs, base_load, ops):
    path = build_path(hop_specs)
    # Pre-populate: permanent commitments that must survive untouched.
    for item in base_load:
        hop = path.hops[item["hop"] % len(path.hops)]
        start = item["start_slot"] * WINDOW
        admit = (
            hop.controller.admit_issue
            if item["layer"] == ISSUED
            else hop.controller.admit_reservation
        )
        admit(
            hop.ingress_interface, True, item["bandwidth"], start, start + WINDOW,
            tag="base",
        )
    baseline = [controller_fingerprint(hop.controller) for hop in path.hops]

    committed = []
    for op in ops:
        start = op["start_slot"] * WINDOW
        end = start + op["duration_slots"] * WINDOW
        ticket = path.screen(
            op["bandwidth"], start, end, tag=op["tag"], layer=op["layer"]
        )
        if not ticket.admitted:
            path.rollback(ticket)  # idempotent no-op on rejected tickets
            if not committed:
                # Nothing else is held, so a failed screen must already
                # have restored every hop to the baseline.
                now = [controller_fingerprint(hop.controller) for hop in path.hops]
                assert now == baseline
            continue
        if op["action"] == "screen":
            path.rollback(ticket)
        elif op["action"] == "commit_fail":
            fail_at = op["fail_hop"] % len(path.hops)

            def hook(index, hop, hold, fail_at=fail_at):
                if index == fail_at:
                    raise RuntimeError("boom")

            try:
                path.commit(ticket, hook=hook)
            except PathCommitError:
                pass
            else:  # hook never fired (fail_at past a shorter holds list)
                path.rollback(ticket)
        else:
            path.commit(ticket)
            committed.append(ticket)

    for ticket in committed:
        path.rollback(ticket)
    final = [controller_fingerprint(hop.controller) for hop in path.hops]
    assert final == baseline


@settings(max_examples=25, deadline=None)
@given(
    hop_specs=st.lists(hop_strategy, min_size=2, max_size=4),
    failing_hop=st.integers(min_value=0, max_value=3),
    bandwidth=st.integers(min_value=100, max_value=600),
    layer=st.sampled_from([ISSUED, ACTIVE]),
)
def test_failed_screen_at_hop_k_restores_upstream(
    hop_specs, failing_hop, bandwidth, layer
):
    path = build_path(hop_specs)
    failing_hop %= len(path.hops)
    # Force a failure at hop k: saturate its egress direction by committing
    # straight into the calendar (bypassing the policy, which might cap the
    # blocker itself).  Earlier hops may still reject first (share caps), so
    # the screen must fail at or before hop k.
    victim = path.hops[failing_hop]
    victim.controller.calendar(victim.egress_interface, False, layer).commit(
        victim.controller.capacity_kbps(victim.egress_interface, False),
        0.0,
        WINDOW,
        tag="blocker",
    )
    baseline = [controller_fingerprint(hop.controller) for hop in path.hops]
    ticket = path.screen(bandwidth, 0.0, WINDOW, tag="victim", layer=layer)
    assert not ticket.admitted
    assert ticket.failed_hop is not None and ticket.failed_hop <= failing_hop
    after = [controller_fingerprint(hop.controller) for hop in path.hops]
    assert after == baseline


@settings(max_examples=25, deadline=None)
@given(
    hop_specs=st.lists(hop_strategy, min_size=2, max_size=4),
    fail_at=st.integers(min_value=0, max_value=3),
    bandwidth=st.integers(min_value=50, max_value=300),
)
def test_failed_commit_at_hop_k_restores_all(hop_specs, fail_at, bandwidth):
    path = build_path(hop_specs)
    fail_at %= len(path.hops)
    baseline = [controller_fingerprint(hop.controller) for hop in path.hops]
    ticket = path.screen(bandwidth, 0.0, WINDOW, tag="buyer")
    if not ticket.admitted:
        assert [controller_fingerprint(h.controller) for h in path.hops] == baseline
        return

    def hook(index, hop, hold):
        if index == fail_at:
            raise RuntimeError("ledger down")

    with pytest.raises(PathCommitError) as err:
        path.commit(ticket, hook=hook)
    assert err.value.hop_index == fail_at
    after = [controller_fingerprint(hop.controller) for hop in path.hops]
    assert after == baseline
