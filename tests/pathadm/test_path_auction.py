"""Combinatorial path clearing: all-or-nothing over per-leg books."""

import pytest

from repro.pathadm import (
    LegSupply,
    PathBid,
    combinatorial_path_clearing,
    path_escrow_mist,
)


def legs(*supplies, reserve=10, **kwargs):
    return [LegSupply(supply_kbps=s, reserve_micromist=reserve, **kwargs) for s in supplies]


def test_single_leg_matches_uniform_price_rule():
    bids = [PathBid("a", 400, 90, seq=0), PathBid("b", 400, 70, seq=1),
            PathBid("c", 400, 50, seq=2)]
    out = combinatorial_path_clearing(bids, legs(800))
    assert [b.bidder for b in out.winners] == ["a", "b"]
    assert out.clearing_prices_micromist == (50,)  # highest losing bid


def test_all_or_nothing_rejects_partial_winners():
    # b wins leg 0 comfortably but cannot fit leg 1 -> loses everywhere.
    bids = [PathBid("a", 400, 90, seq=0), PathBid("b", 400, 70, seq=1)]
    out = combinatorial_path_clearing(bids, legs(800, 500))
    assert [b.bidder for b in out.winners] == ["a"]
    (lost,) = out.losers
    assert lost.bid.bidder == "b" and lost.leg == 1
    assert lost.reason == "supply exhausted"
    # Every final leg outcome awards exactly the path winners.
    for outcome in out.leg_outcomes:
        assert [b.bidder for b in outcome.winners] == ["a"]


def test_evicting_a_partial_frees_supply_for_others():
    # Round 1: rich (600) + mid (300) fill leg 0's 900 kbps and squeeze out
    # poor; rich busts leg 1's 400 kbps, so both rich and poor are partial.
    # The highest-priced partial (rich) is evicted first — freeing leg 0 —
    # and round 2 finds mid + poor complete on both legs.
    bids = [
        PathBid("rich", 600, 90, seq=0),
        PathBid("mid", 300, 80, seq=1),
        PathBid("poor", 100, 60, seq=2),
    ]
    out = combinatorial_path_clearing(bids, legs(900, 400))
    assert [b.bidder for b in out.winners] == ["mid", "poor"]
    assert out.rounds == 2
    assert out.losers[0].bid.bidder == "rich" and out.losers[0].leg == 1
    assert out.losers[0].reason == "supply exhausted"


def test_below_reserve_on_any_leg_loses_path_wide():
    bids = [PathBid("a", 100, 15, seq=0)]
    out = combinatorial_path_clearing(
        bids, [LegSupply(500, reserve_micromist=10), LegSupply(500, reserve_micromist=20)]
    )
    assert not out.cleared
    (lost,) = out.losers
    assert lost.leg == 1 and lost.reason == "below reserve"
    # An uncleared leg's price sits at its reserve.
    assert out.clearing_prices_micromist == (10, 20)


def test_share_cap_applies_per_leg():
    bids = [PathBid("hog", 300, 90, seq=0), PathBid("hog", 300, 85, seq=1),
            PathBid("meek", 300, 50, seq=2)]
    capped = [LegSupply(900, 10, share_cap_kbps=300), LegSupply(900, 10)]
    out = combinatorial_path_clearing(bids, capped)
    winners = [(b.bidder, b.seq) for b in out.winners]
    assert winners == [("hog", 0), ("meek", 2)]
    assert any(l.reason == "share cap" and l.leg == 0 for l in out.losers)


def test_empty_legs_rejected():
    with pytest.raises(ValueError):
        combinatorial_path_clearing([PathBid("a", 100, 10)], [])


def test_no_bids_clears_empty_at_reserves():
    out = combinatorial_path_clearing([], legs(500, 500, reserve=33))
    assert not out.cleared and out.losers == ()
    assert out.clearing_prices_micromist == (33, 33)


def test_escrow_always_covers_payment():
    duration = 3600
    bids = [PathBid(f"b{i}", 200 + 100 * i, 40 + 17 * i, seq=i) for i in range(6)]
    leg_set = legs(700, 500, 600, reserve=25)
    out = combinatorial_path_clearing(bids, leg_set)
    assert out.cleared
    for bid in out.winners:
        escrow = path_escrow_mist(
            bid.bandwidth_kbps, duration, bid.price_micromist_per_unit, len(leg_set)
        )
        payment = out.winner_payment_mist(bid, duration)
        assert 0 <= payment <= escrow
    assert out.revenue_mist(duration) == sum(
        out.winner_payment_mist(b, duration) for b in out.winners
    )


def test_winner_never_pays_above_own_bid_per_leg():
    bids = [PathBid("a", 400, 90, seq=0), PathBid("b", 200, 55, seq=1)]
    out = combinatorial_path_clearing(bids, legs(600, 600))
    for bid in out.winners:
        for price in out.clearing_prices_micromist:
            assert price <= bid.price_micromist_per_unit
