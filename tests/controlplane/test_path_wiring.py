"""Combinatorial path auctions and atomic path admission, fully wired."""

import pytest

from tests.conftest import T0

from repro.admission import ACTIVE
from repro.clock import SimClock
from repro.contracts.coin import coin_balance
from repro.controlplane import (
    deploy_market,
    open_path_auction,
    purchase_path,
    settle_path_auction,
)
from repro.marketdata import BudgetExceeded
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing

WINDOW = (T0 + 3600, T0 + 4200)
DURATION = WINDOW[1] - WINDOW[0]
ASSET_KBPS = 10_000
LEG_KBPS = 6_000


@pytest.fixture()
def world():
    clock = SimClock(float(T0))
    topology = linear_topology(3)
    deployment = deploy_market(
        topology,
        clock=clock,
        asset_start=T0,
        asset_duration=3600,
        asset_bandwidth_kbps=ASSET_KBPS,
        interface_capacity_kbps=2 * ASSET_KBPS,
    )
    store = run_beaconing(topology, timestamp=T0)
    path = PathLookup(store).find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    crossings = as_crossings(path)
    return {"clock": clock, "deployment": deployment, "crossings": crossings}


def open_path(world, bandwidth_kbps=LEG_KBPS):
    return open_path_auction(
        world["deployment"], world["crossings"], *WINDOW, bandwidth_kbps
    )


class TestPathAuctionWiring:
    def test_open_path_auction_claims_every_leg_calendar(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        handle = open_path(world)
        assert len(handle.legs) == 2 * len(crossings)
        for crossing in crossings:
            service = deployment.service(crossing.isd_as)
            for interface, is_ingress in (
                (crossing.ingress, True),
                (crossing.egress, False),
            ):
                # Seed asset (10 Gbps window 0) plus the leg claim.
                headroom = service.admission.calendar(
                    interface, is_ingress, "issued"
                ).headroom(*WINDOW)
                assert headroom == 2 * ASSET_KBPS - LEG_KBPS
        # Every AS recorded its own legs, nobody else's.
        for service, leg_index, interface, is_ingress in handle.legs:
            record = service.path_legs[(handle.path_auction, leg_index)]
            assert (record.interface, record.is_ingress) == (interface, is_ingress)

    def test_acquire_path_bids_into_a_covering_auction(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        open_path(world)
        host = deployment.new_host(name="path-host")
        outcome = host.acquire_path(
            deployment.marketplace, crossings, *WINDOW, 2_000, 100_000
        )
        assert outcome.mode == "path_bid"
        assert outcome.submitted.effects.ok, outcome.submitted.effects.error

    def test_full_path_auction_lifecycle_settles_and_redeems(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        handle = open_path(world)
        winner = deployment.new_host(name="winner")
        rival = deployment.new_host(name="rival")
        acquired = winner.acquire_path(
            deployment.marketplace, crossings, *WINDOW, 2_000, 500_000
        )
        assert acquired.mode == "path_bid"
        rival.place_path_bid(
            deployment.marketplace, handle.path_auction, LEG_KBPS, 40_000
        )
        world["clock"].set(float(WINDOW[0]))
        record = settle_path_auction(deployment, handle)
        assert len(record.clearing_prices_micromist) == 2 * len(crossings)

        settlement = winner.await_path_settle(
            deployment.marketplace, handle.path_auction
        )
        assert settlement is not None and settlement.won
        # One piece per leg, in path order.
        assert len(settlement.assets) == 2 * len(crossings)
        lost = rival.await_path_settle(deployment.marketplace, handle.path_auction)
        assert lost is not None and not lost.won and lost.paid_mist == 0

        # Escrow conservation straight from the event stream.
        placed = deployment.ledger.events_since(0, "PathBidPlaced")
        payload = deployment.ledger.events_since(0, "PathAuctionSettled")[0].payload
        escrow_total = sum(event.payload["escrow_mist"] for event in placed)
        paid = sum(w["paid_mist"] for w in payload["winners"])
        refunds = sum(w["refund_mist"] for w in payload["winners"]) + sum(
            l["refund_mist"] for l in payload["losers"]
        )
        assert paid + refunds == escrow_total

        # Atomic path-wide redemption: one transaction, every pair.
        pairs = list(zip(settlement.assets[0::2], settlement.assets[1::2]))
        redeemed = winner.redeem_path(pairs)
        assert redeemed.effects.ok, redeemed.effects.error
        for crossing in crossings:
            deployment.service(crossing.isd_as).poll_and_deliver()
        reservations = winner.collect_reservations()
        assert len(reservations) == len(crossings)

    def test_settle_clamps_supply_to_live_headroom(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        handle = open_path(world)
        # One AS's active calendar loses headroom before settlement: its
        # legs can sell less than was offered.
        squeezed = deployment.service(crossings[1].isd_as)
        squeezed.admission.admit_reservation(
            crossings[1].ingress, True, 2 * ASSET_KBPS - 1_000, *WINDOW, tag="ops"
        )
        supplies = [
            service.path_leg_supply(handle.path_auction, leg_index)
            for service, leg_index, _, _ in handle.legs
        ]
        assert min(supplies) == 1_000 and max(supplies) == LEG_KBPS

    def test_place_path_bid_refuses_budgets_below_a_leg_reserve(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        handle = open_path(world)
        host = deployment.new_host(name="cheap")
        with pytest.raises(ValueError, match="below the dearest leg reserve"):
            host.place_path_bid(
                deployment.marketplace, handle.path_auction, 2_000, 10
            )


class TestAcquirePathFallback:
    def test_falls_back_to_posted_listings_atomically(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        host = deployment.new_host(name="posted-host")
        before = coin_balance(deployment.ledger, host.account.address)
        outcome = host.acquire_path(
            deployment.marketplace, crossings, T0, T0 + 600, 2_000, 10_000
        )
        assert outcome.mode == "bought"
        assert outcome.submitted.effects.ok, outcome.submitted.effects.error
        assert 0 < outcome.price_mist <= 10_000
        assert (
            coin_balance(deployment.ledger, host.account.address)
            == before - outcome.price_mist
        )
        for crossing in crossings:
            deployment.service(crossing.isd_as).poll_and_deliver()
        assert len(host.collect_reservations()) == len(crossings)

    def test_fallback_honours_the_repricing_budget_guard(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        host = deployment.new_host(name="strapped")
        with pytest.raises(BudgetExceeded):
            host.acquire_path(
                deployment.marketplace, crossings, T0, T0 + 600, 2_000, 100
            )


class TestPurchasePathPreflight:
    def test_mid_path_saturation_aborts_before_any_money_moves(self, world):
        deployment, crossings = world["deployment"], world["crossings"]
        # Saturate the middle AS's ingress active calendar: deliveries
        # there are impossible, so the pre-flight must refuse the path.
        victim = crossings[1]
        service = deployment.service(victim.isd_as)
        decision = service.admission.admit_reservation(
            victim.ingress, True, 2 * ASSET_KBPS, T0, T0 + 3600, tag="saturated"
        )
        assert decision.admitted
        host = deployment.new_host(name="blocked")
        before = coin_balance(deployment.ledger, host.account.address)
        with pytest.raises(RuntimeError, match="pre-flight"):
            purchase_path(deployment, host, crossings, T0, T0 + 600, 2_000)
        assert coin_balance(deployment.ledger, host.account.address) == before
        # The provisional holds are gone: a feasible path still works.
        service.admission.release(
            victim.ingress, True, decision.commitment, layer=ACTIVE
        )
        outcome = purchase_path(deployment, host, crossings, T0, T0 + 600, 2_000)
        assert len(outcome.reservations) == len(crossings)
