"""Control plane end to end: deploy, purchase, deliver, use on the data plane."""

import pytest

from tests.conftest import T0, addresses, walk_path

from repro.clock import SimClock
from repro.controlplane import ListingNotFound, deploy_market, purchase_path
from repro.controlplane.pki import CpPki
from repro.hummingbird import HummingbirdRouter, HummingbirdSource
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing
from repro.scion.addresses import IsdAs
from repro.scion.router import Action


@pytest.fixture(scope="module")
def world():
    clock = SimClock(float(T0))
    topology = linear_topology(3)
    deployment = deploy_market(topology, clock=clock, asset_duration=14_400)
    store = run_beaconing(topology, timestamp=T0)
    path = PathLookup(store).find_paths(topology.ases[2].isd_as, topology.ases[0].isd_as)[0]
    return {
        "clock": clock,
        "topology": topology,
        "deployment": deployment,
        "path": path,
        "next_window": [T0 + 3600],  # mutable slot allocator
    }


def fresh_window(world, duration=600):
    """A not-yet-fragmented purchase window (each test gets its own slot)."""
    start = world["next_window"][0]
    world["next_window"][0] = start + duration + 600
    return start, start + duration


def purchase(world, bandwidth_kbps=4000, window=None):
    deployment = world["deployment"]
    host = deployment.new_host(funding_sui=100)
    start, expiry = window if window is not None else fresh_window(world)
    outcome = purchase_path(
        deployment,
        host,
        as_crossings(world["path"]),
        start=start,
        expiry=expiry,
        bandwidth_kbps=bandwidth_kbps,
    )
    return host, outcome


class TestPurchaseWorkflow:
    def test_reservations_cover_all_crossings(self, world):
        _, outcome = purchase(world)
        crossings = as_crossings(world["path"])
        assert len(outcome.reservations) == len(crossings)
        granted = {(r.isd_as, r.ingress, r.egress) for r in outcome.reservations}
        expected = {(c.isd_as, c.ingress, c.egress) for c in crossings}
        assert granted == expected

    def test_reservation_windows_cover_request(self, world):
        start, expiry = fresh_window(world)
        host = world["deployment"].new_host(funding_sui=100)
        outcome = purchase_path(
            world["deployment"], host, as_crossings(world["path"]),
            start=start, expiry=expiry, bandwidth_kbps=4000,
        )
        for reservation in outcome.reservations:
            assert reservation.resinfo.start <= start
            assert reservation.resinfo.expiry >= expiry

    def test_bandwidth_class_is_floor_of_purchase(self, world):
        from repro.wire import bwcls

        _, outcome = purchase(world, bandwidth_kbps=5000)
        for reservation in outcome.reservations:
            assert reservation.resinfo.bandwidth_kbps <= 5000
            assert reservation.resinfo.bw_cls == bwcls.encode_floor(5000)

    def test_latency_phases(self, world):
        _, outcome = purchase(world)
        assert outcome.latency.request > 0
        assert outcome.latency.response > 0
        assert outcome.latency.total == pytest.approx(
            outcome.latency.request + outcome.latency.response
        )

    def test_gas_in_paper_band(self, world):
        """3 hops stay in Table 1's magnitude band and the 1000-unit bucket.

        The exact storage cost depends on how fragmented the listings
        already are (earlier tests in this module bought rectangles too),
        so the band is generous; the Table 1 bench uses a fresh market.
        """
        _, outcome = purchase(world)
        assert 0.01 < outcome.gas.total_sui < 0.20
        assert outcome.gas.computation_units == 1000
        assert outcome.gas.storage_cost > outcome.gas.computation_cost  # storage-dominated

    def test_distinct_res_ids_for_overlapping_windows(self, world):
        """Two hosts overlapping in time get different ResIDs per interface."""
        window = fresh_window(world)
        _, first = purchase(world, window=window)
        _, second = purchase(world, window=window)
        for a in first.reservations:
            for b in second.reservations:
                if (a.isd_as, a.ingress, a.egress) == (b.isd_as, b.ingress, b.egress):
                    overlap = (
                        a.resinfo.start < b.resinfo.expiry
                        and b.resinfo.start < a.resinfo.expiry
                    )
                    if overlap:
                        assert a.resinfo.res_id != b.resinfo.res_id

    def test_purchased_reservations_work_on_data_plane(self, world):
        host, outcome = purchase(world)
        clock = world["clock"]
        topology = world["topology"]
        path = world["path"]
        active = max(r.resinfo.start for r in outcome.reservations) + 1
        if clock.now() < active:
            clock.set(active)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, outcome.reservations, clock)
        routers = {a.isd_as: HummingbirdRouter(a, clock) for a in topology.ases}
        decisions = walk_path(topology, routers, source.build_packet(b"x" * 64), path.src)
        assert decisions[-1].action is Action.DELIVER
        assert all(d.action is Action.FORWARD_PRIORITY for d in decisions[:-1])

    def test_assets_destroyed_after_redeem(self, world):
        host, _ = purchase(world)
        assert host.owned_assets() == []  # wrapped into requests, then burned

    def test_unknown_as_listing_fails(self, world):
        host = world["deployment"].new_host(funding_sui=10)
        with pytest.raises(ListingNotFound):
            host.find_listing(
                world["deployment"].marketplace,
                IsdAs(9, 9),
                1,
                True,
                T0,
                T0 + 600,
                1000,
            )


class TestPki:
    def test_certificate_roundtrip(self):
        import random

        from repro.crypto.signatures import SigningKey

        pki = CpPki(seed=5)
        key = SigningKey.generate(random.Random(5))
        cert = pki.issue_certificate(IsdAs(1, 7), key.public)
        assert pki.verify_certificate(cert)

    def test_tampered_certificate_rejected(self):
        import random

        from repro.crypto.signatures import SigningKey

        pki = CpPki(seed=5)
        key = SigningKey.generate(random.Random(5))
        cert = pki.issue_certificate(IsdAs(1, 7), key.public)
        cert["asn"] = 8
        assert not pki.verify_certificate(cert)

    def test_foreign_anchor_rejected(self):
        import random

        from repro.crypto.signatures import SigningKey

        pki_a = CpPki(seed=1)
        pki_b = CpPki(seed=2)
        key = SigningKey.generate(random.Random(5))
        cert = pki_a.issue_certificate(IsdAs(1, 7), key.public)
        assert not pki_b.verify_certificate(cert)
