"""Reservation manager: rolling-window coverage without lapses."""

import pytest

from tests.conftest import T0

from repro.clock import SimClock
from repro.controlplane import deploy_market
from repro.controlplane.manager import ReservationManager
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing


@pytest.fixture(scope="module")
def world():
    clock = SimClock(float(T0))
    topology = linear_topology(3)
    deployment = deploy_market(topology, clock=clock, asset_duration=14_400)
    store = run_beaconing(topology, timestamp=T0)
    path = PathLookup(store).find_paths(
        topology.ases[2].isd_as, topology.ases[0].isd_as
    )[0]
    return deployment, as_crossings(path), clock


def make_manager(world, **kwargs):
    deployment, crossings, _ = world
    host = deployment.new_host(funding_sui=200)
    defaults = dict(window_seconds=600, renew_margin=60.0)
    defaults.update(kwargs)
    return ReservationManager(deployment, host, crossings, 4000, **defaults)


class TestManager:
    def test_first_lease_covers_the_window(self, world):
        _, _, clock = world
        manager = make_manager(world)
        start = int(clock.now()) + 120
        lease = manager.start(start)
        assert lease.start <= start
        assert lease.expiry >= start + 600
        assert len(lease.reservations) == 3

    def test_no_renewal_outside_margin(self, world):
        _, _, clock = world
        manager = make_manager(world)
        start = int(clock.now()) + 120
        manager.start(start)
        assert manager.tick(start + 100) is None
        assert len(manager.leases) == 1

    def test_renewal_inside_margin_is_seamless(self, world):
        _, _, clock = world
        manager = make_manager(world)
        start = int(clock.now()) + 120
        first = manager.start(start)
        renewed = manager.tick(first.expiry - 30)
        assert renewed is not None
        # Continuous coverage: the new lease starts where the old one ends.
        assert renewed.start <= first.expiry
        assert manager.coverage_until() >= first.expiry + 600 - 60

    def test_active_reservations_switch_over(self, world):
        _, _, clock = world
        manager = make_manager(world)
        start = int(clock.now()) + 120
        first = manager.start(start)
        second = manager.tick(first.expiry - 30)
        assert manager.active_reservations(first.expiry - 120) == first.reservations
        assert manager.active_reservations(first.expiry + 60) == second.reservations

    def test_lapse_detection(self, world):
        manager = make_manager(world)
        _, _, clock = world
        start = int(clock.now()) + 120
        lease = manager.start(start)
        with pytest.raises(RuntimeError):
            manager.tick(lease.expiry + 1)

    def test_price_accumulates(self, world):
        _, _, clock = world
        manager = make_manager(world)
        start = int(clock.now()) + 120
        first = manager.start(start)
        manager.tick(first.expiry - 30)
        assert manager.total_price_mist > 0
        assert len(manager.leases) == 2

    def test_bad_parameters_rejected(self, world):
        with pytest.raises(ValueError):
            make_manager(world, window_seconds=60, renew_margin=120.0)
        with pytest.raises(ValueError):
            make_manager(world, flex_start=-1)

    def test_budget_cap_refuses_overpriced_window(self, world):
        from repro.controlplane import BudgetExceeded

        _, _, clock = world
        manager = make_manager(world, budget_mist_per_window=1)
        with pytest.raises(BudgetExceeded):
            manager.start(int(clock.now()) + 120)
        assert manager.leases == []  # nothing bought, nothing charged

    def test_estimate_tracks_paid_totals(self, world):
        _, _, clock = world
        manager = make_manager(world, budget_mist_per_window=10_000_000)
        first = manager.start(int(clock.now()) + 120)
        manager.tick(first.expiry - 30)
        assert manager.total_estimated_mist == manager.total_price_mist > 0
