"""Reclamation through the control plane: track, reclaim, relist, pay once.

The escrow-conservation property anchors this module: when reclaimed
bandwidth is relisted and sold, the proceeds go to the AS (the relisted
listing's seller) and never to the original holder — whose coins and
asset are untouched by the second sale.
"""

import pytest

from tests.conftest import T0

from repro.clock import SimClock
from repro.contracts.coin import coin_balance
from repro.controlplane import deploy_market, purchase_path
from repro.ledger.transactions import Command, Transaction
from repro.reclaim import AdaptiveOverbooking
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing

BANDWIDTH = 50_000


def _deploy(admission_policy=None, reclamation_overrides=None):
    clock = SimClock(float(T0))
    topology = linear_topology(3)
    options = dict(interval=0.25, grace_seconds=5.0)
    options.update(reclamation_overrides or {})
    deployment = deploy_market(
        topology,
        clock=clock,
        admission_policy=admission_policy,
        reclamation=options,
    )
    store = run_beaconing(topology, timestamp=T0)
    path = PathLookup(store).find_paths(
        topology.ases[2].isd_as, topology.ases[0].isd_as
    )[0]
    return clock, deployment, path


def _no_show_purchase(clock, deployment, path):
    """Buy a path reservation, never send a byte, let the grace expire."""
    host = deployment.new_host(funding_sui=100)
    outcome = purchase_path(
        deployment,
        host,
        as_crossings(path),
        start=T0 + 60,
        expiry=T0 + 660,
        bandwidth_kbps=BANDWIDTH,
    )
    assert outcome.reservations
    clock.advance(T0 + 70 - clock.now())  # past start + grace, inside window
    return host, outcome


@pytest.fixture(scope="module")
def reclaimed_world():
    clock, deployment, path = _deploy(
        admission_policy=AdaptiveOverbooking(initial_factor=1.5, max_factor=3.0)
    )
    host, outcome = _no_show_purchase(clock, deployment, path)
    events = {
        crossing.isd_as: deployment.service(crossing.isd_as).reclaim_no_shows()
        for crossing in as_crossings(path)
    }
    deployment.indexer.sync()
    return {
        "clock": clock,
        "deployment": deployment,
        "path": path,
        "host": host,
        "outcome": outcome,
        "events": events,
    }


def test_every_on_path_as_reclaims_the_no_show(reclaimed_world):
    events = reclaimed_world["events"]
    for isd_as, completed in events.items():
        assert len(completed) == 1, f"{isd_as} did not reclaim"
        event = completed[0]
        assert event.old_kbps == BANDWIDTH
        assert event.new_kbps == 1  # min_retained floor: observed zero
        assert event.observed_kbps == 0.0


def test_reclaimed_listings_carry_provenance(reclaimed_world):
    deployment = reclaimed_world["deployment"]
    indexer = deployment.indexer
    assert indexer.reclaimed_seen == len(reclaimed_world["events"])
    for crossing in as_crossings(reclaimed_world["path"]):
        service = deployment.service(crossing.isd_as)
        event, listing_id, status = service.relisted[-1]
        assert status == "relisted", status
        provenance = indexer.provenance(listing_id)
        assert provenance is not None
        assert provenance["reclaimed_kbps"] == event.freed_kbps == BANDWIDTH - 1
        assert provenance["original_holder"] == event.tag
        # The relisted listing's seller is the AS, not the original holder.
        listing = deployment.ledger.get_object(listing_id)
        assert listing.payload["seller"] == service.account.address


def test_relisted_sale_never_double_pays_the_original_holder(reclaimed_world):
    deployment = reclaimed_world["deployment"]
    ledger = deployment.ledger
    crossing = as_crossings(reclaimed_world["path"])[0]
    service = deployment.service(crossing.isd_as)
    _, listing_id, _ = service.relisted[-1]
    listing = ledger.get_object(listing_id)
    asset = ledger.get_object(listing.payload["asset"])

    holder = reclaimed_world["host"].account.address
    holder_before = coin_balance(ledger, holder)
    seller_before = coin_balance(ledger, service.account.address)

    buyer = deployment.new_host(funding_sui=100)
    submitted = buyer.executor.submit(
        Transaction(
            sender=buyer.account.address,
            commands=[
                Command(
                    "market",
                    "buy",
                    {
                        "marketplace": deployment.marketplace,
                        "listing": listing_id,
                        "start": asset.payload["start"],
                        "expiry": asset.payload["expiry"],
                        "bandwidth_kbps": asset.payload["bandwidth_kbps"],
                        "payment": buyer.payment_coin,
                    },
                )
            ],
        )
    )
    assert submitted.effects.ok, submitted.effects.error
    price = submitted.effects.returns[0]["price_mist"]
    assert price > 0

    # The AS is paid exactly once; the original holder gets nothing and
    # loses nothing — escrow is conserved across the resale.
    assert coin_balance(ledger, service.account.address) == seller_before + price
    assert coin_balance(ledger, holder) == holder_before


def test_original_holder_keeps_its_retained_commitment_after_the_resale(
    reclaimed_world,
):
    """The resale carves the *relisted* asset; the holder's (shrunk)
    active-calendar commitments survive it untouched."""
    from repro.admission import ACTIVE

    deployment = reclaimed_world["deployment"]
    for crossing in as_crossings(reclaimed_world["path"]):
        service = deployment.service(crossing.isd_as)
        tracked = service.reclamation.tracked(0)
        assert tracked is not None and tracked.reclaimed_to_kbps == 1
        for interface, is_ingress, commitment_id in tracked.handles:
            calendar = service.admission.calendar(interface, is_ingress, ACTIVE)
            assert calendar.get(commitment_id).bandwidth_kbps == 1


def test_strict_fcfs_refuses_the_relist_instead_of_forcing_it():
    """Without overbooking the issued calendar is full: record, don't list."""
    clock, deployment, path = _deploy(admission_policy=None)
    _no_show_purchase(clock, deployment, path)
    crossing = as_crossings(path)[0]
    service = deployment.service(crossing.isd_as)
    events = service.reclaim_no_shows()
    assert len(events) == 1  # the calendars still shrink...
    event, listing_id, reason = service.relisted[-1]
    assert listing_id is None  # ...but nothing reaches the market
    assert reason != "relisted"
    deployment.indexer.sync()
    assert deployment.indexer.reclaimed_seen == 0
