"""Auctions wired through AsService, HostClient, and the deployment."""

import pytest

from tests.conftest import T0

from repro.admission import ACTIVE, AdmissionRejected, ScarcityPricer
from repro.clock import SimClock
from repro.contracts.coin import coin_balance
from repro.controlplane import deploy_market
from repro.marketdata import ListingNotFound
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing

WINDOW = (T0 + 3600, T0 + 4200)
ASSET_KBPS = 10_000


@pytest.fixture()
def world():
    clock = SimClock(float(T0))
    topology = linear_topology(3)
    deployment = deploy_market(
        topology,
        clock=clock,
        asset_start=T0,
        asset_duration=3600,
        asset_bandwidth_kbps=ASSET_KBPS,
        interface_capacity_kbps=2 * ASSET_KBPS,
        pricer=ScarcityPricer(),
        auction_interfaces=True,
    )
    store = run_beaconing(topology, timestamp=T0)
    path = PathLookup(store).find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    crossing = as_crossings(path)[1]
    service = deployment.service(crossing.isd_as)
    return {
        "clock": clock,
        "deployment": deployment,
        "crossing": crossing,
        "service": service,
    }


def open_auction(world, bandwidth_kbps=6_000, reserve_base=50):
    service, crossing = world["service"], world["crossing"]
    submitted = service.open_auction(
        world["deployment"].marketplace,
        crossing.ingress,
        True,
        bandwidth_kbps,
        *WINDOW,
        reserve_base,
    )
    assert submitted.effects.ok, submitted.effects.error
    return next(iter(service.open_auctions))


class TestAsServiceAuctions:
    def test_open_auction_claims_the_issued_calendar(self, world):
        service, crossing = world["service"], world["crossing"]
        before = service.admission.utilization(crossing.ingress, True, *WINDOW)
        open_auction(world, bandwidth_kbps=6_000)
        after = service.admission.utilization(crossing.ingress, True, *WINDOW)
        assert after == pytest.approx(before + 6_000 / (2 * ASSET_KBPS))

    def test_open_auction_rejected_when_it_would_oversell(self, world):
        with pytest.raises(AdmissionRejected):
            open_auction(world, bandwidth_kbps=2 * ASSET_KBPS + 1_000)
        # The rejected attempt left no dangling book behind.
        crossing = world["crossing"]
        assert (
            world["service"].admission.auction_for(crossing.ingress, True, *WINDOW)
            is None
        )

    def test_offer_capacity_dispatches_on_interface_mode(self, world):
        deployment = world["deployment"]
        service, crossing = world["service"], world["crossing"]
        # Everything is in auction mode here: offering capacity auctions it.
        submitted = service.offer_capacity(
            deployment.marketplace, crossing.ingress, True, 1_000, *WINDOW, 50
        )
        assert submitted.effects.ok
        assert len(service.open_auctions) == 1
        # A posted-mode deployment lists instead (no auction record).
        posted = deploy_market(
            linear_topology(2),
            clock=SimClock(float(T0)),
            asset_start=T0,
            asset_duration=3600,
            asset_bandwidth_kbps=ASSET_KBPS,
            interface_capacity_kbps=2 * ASSET_KBPS,
        )
        posted_service = next(iter(posted.services.values()))
        listed = posted_service.offer_capacity(
            posted.marketplace, 1, True, 1_000, *WINDOW, 50
        )
        assert listed.effects.ok
        assert posted_service.open_auctions == {}

    def test_settle_waits_for_the_window_boundary(self, world):
        open_auction(world)
        assert world["service"].settle_due_auctions() == []
        world["clock"].set(float(WINDOW[0]))
        assert len(world["service"].settle_due_auctions()) == 1
        assert world["service"].open_auctions == {}

    def test_preview_matches_onchain_settlement(self, world):
        deployment = world["deployment"]
        auction_id = open_auction(world, bandwidth_kbps=6_000)
        for index, budget in enumerate((9_000, 6_000, 4_500)):
            host = deployment.new_host(name=f"bidder-{index}")
            assert host.place_bid(
                deployment.marketplace, auction_id, 2_500, budget
            ).effects.ok
        preview = world["service"].preview_settlement(auction_id)
        world["clock"].set(float(WINDOW[0]))
        record = world["service"].settle_due_auctions()[0]
        assert record.clearing_price_micromist == preview.clearing_price_micromist
        assert [w["bidder"] for w in record.winners] == [
            bid.bidder for bid in preview.winners
        ]
        assert record.awarded_kbps == preview.awarded_kbps

    def test_headroom_loss_before_settle_shrinks_the_supply(self, world):
        """A direct grant between open and settle clamps what is sold."""
        deployment = world["deployment"]
        service, crossing = world["service"], world["crossing"]
        auction_id = open_auction(world, bandwidth_kbps=6_000)
        winner = deployment.new_host(name="early")
        loser = deployment.new_host(name="late")
        assert winner.place_bid(
            deployment.marketplace, auction_id, 2_500, 9_000
        ).effects.ok
        assert loser.place_bid(
            deployment.marketplace, auction_id, 2_500, 6_000
        ).effects.ok
        # Live capacity vanishes: a 16 Mbps reservation is granted directly
        # (outside the market), leaving 4 Mbps of active headroom.
        decision = service.admission.admit_reservation(
            crossing.ingress, True, 16_000, *WINDOW, tag="direct-grant"
        )
        assert decision.admitted
        world["clock"].set(float(WINDOW[0]))
        record = world["service"].settle_due_auctions()[0]
        assert record.supply_kbps == 4_000
        assert [w["bidder"] for w in record.winners] == [winner.account.address]
        outcome = loser.await_settle(deployment.marketplace, auction_id)
        assert not outcome.won and outcome.reasons == ("supply exhausted",)
        # The loser got every escrowed MIST back.
        assert coin_balance(deployment.ledger, loser.account.address) == (
            coin_balance(deployment.ledger, winner.account.address)
            + record.winners[0]["paid_mist"]
        )


class TestHostClientAuctions:
    def test_find_auction_and_await_settle_lifecycle(self, world):
        deployment = world["deployment"]
        crossing = world["crossing"]
        auction_id = open_auction(world, bandwidth_kbps=6_000)
        host = deployment.new_host(name="bidder")
        found = host.find_auction(
            deployment.marketplace, crossing.isd_as, crossing.ingress, True,
            WINDOW[0], WINDOW[1], 2_500,
        )
        assert found is not None and found["auction"] == auction_id
        # Wrong direction / window / bandwidth: no cover.
        assert (
            host.find_auction(
                deployment.marketplace, crossing.isd_as, crossing.ingress, False,
                WINDOW[0], WINDOW[1], 2_500,
            )
            is None
        )
        assert (
            host.find_auction(
                deployment.marketplace, crossing.isd_as, crossing.ingress, True,
                WINDOW[0], WINDOW[1] + 600, 2_500,
            )
            is None
        )
        assert host.place_bid(
            deployment.marketplace, auction_id, 2_500, 9_000
        ).effects.ok
        assert host.await_settle(deployment.marketplace, auction_id) is None
        world["clock"].set(float(WINDOW[0]))
        world["service"].settle_due_auctions()
        outcome = host.await_settle(deployment.marketplace, auction_id)
        assert outcome.won and outcome.bandwidth_kbps == 2_500
        assert len(outcome.assets) == 1
        # The auction is no longer discoverable as open.
        assert (
            host.find_auction(
                deployment.marketplace, crossing.isd_as, crossing.ingress, True,
                WINDOW[0], WINDOW[1], 2_500,
            )
            is None
        )

    def test_place_bid_refuses_budgets_below_the_reserve(self, world):
        """A below-reserve bid could only lock its escrow and lose —
        rejected client-side before any transaction."""
        deployment = world["deployment"]
        auction_id = open_auction(world)
        host = deployment.new_host(name="cheapskate")
        record = world["service"].open_auctions[auction_id]
        units = 2_500 * (WINDOW[1] - WINDOW[0])
        below = (record.reserve_micromist_per_unit * units - 1) // 1_000_000
        with pytest.raises(ValueError, match="below the auction's reserve"):
            host.place_bid(deployment.marketplace, auction_id, 2_500, below)

    def test_refunds_are_consolidated_for_the_next_bid(self, world):
        """Losing escrows come back as fresh coins; the client folds them
        into the payment coin instead of drowning in 'insufficient escrow'."""
        deployment = world["deployment"]
        service = world["service"]
        auction_id = open_auction(world, bandwidth_kbps=6_000)
        # Fund with just enough for ~one escrow, then lose the auction.
        host = deployment.new_host(name="persistent", funding_sui=6_000 / 1e9)
        rival = deployment.new_host(name="rival")
        assert host.place_bid(
            deployment.marketplace, auction_id, 2_500, 4_000
        ).effects.ok
        assert rival.place_bid(
            deployment.marketplace, auction_id, 6_000, 18_000
        ).effects.ok
        world["clock"].set(float(WINDOW[0]))
        service.settle_due_auctions()
        assert not host.await_settle(deployment.marketplace, auction_id).won
        # A second auction: the refunded escrow must be spendable again.
        service.open_auction(
            deployment.marketplace, world["crossing"].ingress, True, 6_000,
            WINDOW[0] + 600, WINDOW[1] + 600, 50,
        )
        second = next(iter(service.open_auctions))
        again = host.place_bid(deployment.marketplace, second, 2_500, 4_000)
        assert again.effects.ok, again.effects.error

    def test_acquire_bids_when_an_auction_covers(self, world):
        deployment = world["deployment"]
        crossing = world["crossing"]
        auction_id = open_auction(world)
        host = deployment.new_host(name="acquirer")
        outcome = host.acquire(
            deployment.marketplace, crossing.isd_as, crossing.ingress, True,
            WINDOW[0], WINDOW[1], 2_500, max_price_mist=9_000,
        )
        assert outcome.mode == "bid"
        assert outcome.reference == auction_id
        assert outcome.submitted.effects.ok

    def test_acquire_falls_back_to_posted_listings(self, world):
        """No auction over the seed window: the planner's market answers."""
        deployment = world["deployment"]
        crossing = world["crossing"]
        host = deployment.new_host(name="fallback")
        outcome = host.acquire(
            deployment.marketplace, crossing.isd_as, crossing.ingress, True,
            T0 + 60, T0 + 660, 1_000, max_price_mist=10_000_000,
        )
        assert outcome.mode == "bought"
        assert outcome.submitted.effects.ok
        assert outcome.price_mist > 0

    def test_acquire_raises_when_nothing_covers(self, world):
        deployment = world["deployment"]
        crossing = world["crossing"]
        host = deployment.new_host(name="nobody")
        with pytest.raises(ListingNotFound):
            host.acquire(
                deployment.marketplace, crossing.isd_as, crossing.ingress, True,
                T0 + 100_000, T0 + 100_600, 1_000, max_price_mist=10_000_000,
            )

    def test_won_asset_redeems_and_claims_active_calendar(self, world):
        """bid -> settle -> redeem_pair -> delivery claims live capacity."""
        deployment = world["deployment"]
        service, crossing = world["service"], world["crossing"]
        auction_id = open_auction(world, bandwidth_kbps=6_000)
        host = deployment.new_host(name="winner")
        assert host.place_bid(
            deployment.marketplace, auction_id, 2_500, 9_000
        ).effects.ok
        # A matching posted egress listing for the auction window.
        assert service.issue_and_list(
            deployment.marketplace, crossing.egress, False, 6_000, *WINDOW, 50
        ).effects.ok
        world["clock"].set(float(WINDOW[0]))
        service.settle_due_auctions()
        won = host.await_settle(deployment.marketplace, auction_id).assets[0]
        egress = host.acquire(
            deployment.marketplace, crossing.isd_as, crossing.egress, False,
            WINDOW[0], WINDOW[1], 2_500, max_price_mist=10_000_000,
        )
        assert egress.mode == "bought"
        redeemed = host.redeem_pair(
            won, egress.submitted.effects.returns[0]["asset"]
        )
        assert redeemed.effects.ok, redeemed.effects.error
        assert len(service.poll_and_deliver()) == 1
        reservations = host.collect_reservations()
        assert len(reservations) == 1
        assert reservations[0].isd_as == crossing.isd_as
        active = service.admission.calendar(crossing.ingress, True, ACTIVE)
        assert active.peak_commitment(*WINDOW) == 2_500
