"""Admission control wired through the AS service and market deployment."""

import pytest

from tests.conftest import T0

from repro.admission import (
    AdmissionController,
    AdmissionRejected,
    ProportionalShare,
    ScarcityPricer,
)
from repro.clock import SimClock
from repro.controlplane import HopRequirement, deploy_market, purchase_path
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing


@pytest.fixture()
def world():
    clock = SimClock(float(T0))
    topology = linear_topology(3)
    deployment = deploy_market(topology, clock=clock, asset_duration=14_400)
    store = run_beaconing(topology, timestamp=T0)
    path = PathLookup(store).find_paths(
        topology.ases[2].isd_as, topology.ases[0].isd_as
    )[0]
    return {"clock": clock, "topology": topology, "deployment": deployment, "path": path}


class TestIssuanceAdmission:
    def test_over_capacity_issuance_rejected(self, world):
        """The deployment fills every calendar; one more kbps must bounce."""
        deployment = world["deployment"]
        service = deployment.service(world["topology"].ases[0].isd_as)
        with pytest.raises(AdmissionRejected, match="kbps free"):
            service.issue_and_list(
                deployment.marketplace, 1, True, 1000, T0, T0 + 3600, 50
            )
        assert service.admission.rejections == 1

    def test_disjoint_window_issuance_admitted(self, world):
        """The same interface is free again after the deployed assets expire."""
        deployment = world["deployment"]
        service = deployment.service(world["topology"].ases[0].isd_as)
        later = T0 + 14_400  # deployed assets end here
        submitted = service.issue_and_list(
            deployment.marketplace, 1, True, 1000, later, later + 3600, 50
        )
        assert submitted.effects.ok

    def test_seed_deployment_fills_calendars_exactly(self, world):
        deployment = world["deployment"]
        for autonomous_system in world["topology"].ases:
            service = deployment.service(autonomous_system.isd_as)
            for interface in [0, *sorted(autonomous_system.interfaces)]:
                for is_ingress in (True, False):
                    utilization = service.admission.utilization(
                        interface, is_ingress, T0, T0 + 14_400
                    )
                    assert utilization == pytest.approx(1.0)

    def test_failed_ledger_transaction_releases_commitment(self, world):
        """An issuance the ledger refuses must hand its capacity back."""
        deployment = world["deployment"]
        service = deployment.service(world["topology"].ases[0].isd_as)
        later = T0 + 14_400
        # Duration not a multiple of the granularity: the contract aborts
        # after admission already committed.
        refused = service.issue_and_list(
            deployment.marketplace, 1, True, 1000, later, later + 3601, 50
        )
        assert not refused.effects.ok
        assert service.admission.calendar(1, True).peak_commitment(later, later + 3601) == 0


class TestDeliveryAdmission:
    def test_deliveries_land_in_active_calendar(self, world):
        deployment = world["deployment"]
        host = deployment.new_host(funding_sui=100)
        start, expiry = T0 + 3600, T0 + 4200
        purchase_path(
            deployment,
            host,
            as_crossings(world["path"]),
            start=start,
            expiry=expiry,
            bandwidth_kbps=4000,
        )
        crossings = as_crossings(world["path"])
        for crossing in crossings:
            service = deployment.service(crossing.isd_as)
            ingress_peak = service.admission.calendar(
                crossing.ingress, True, "active"
            ).peak_commitment(start, expiry)
            egress_peak = service.admission.calendar(
                crossing.egress, False, "active"
            ).peak_commitment(start, expiry)
            assert ingress_peak >= 4000
            assert egress_peak >= 4000

    def test_active_commitments_tagged_with_redeemer(self, world):
        deployment = world["deployment"]
        host = deployment.new_host(funding_sui=100)
        start, expiry = T0 + 4800, T0 + 5400
        purchase_path(
            deployment,
            host,
            as_crossings(world["path"]),
            start=start,
            expiry=expiry,
            bandwidth_kbps=4000,
        )
        crossing = as_crossings(world["path"])[0]
        service = deployment.service(crossing.isd_as)
        calendar = service.admission.calendar(crossing.ingress, True, "active")
        assert calendar.tag_peak(host.account.address, start, expiry) >= 4000

    def test_partial_batch_rejection_does_not_orphan_later_requests(self, world):
        """A rejected delivery is skipped, not allowed to abort the poll:
        later requests in the same event batch still get served."""
        deployment = world["deployment"]
        crossing = as_crossings(world["path"])[0]
        service = deployment.service(crossing.isd_as)
        start, expiry = T0 + 7200, T0 + 7800
        for _ in range(2):
            host = deployment.new_host(funding_sui=100)
            plan = host.plan_purchase(
                deployment.marketplace,
                [HopRequirement.from_crossing(crossing, start, expiry, 4000)],
            )
            assert host.atomic_buy_and_redeem(deployment.marketplace, plan).effects.ok
        # Shrink the AS's live capacity so only the first request fits.
        service.admission = AdmissionController(5000)
        records = service.poll_and_deliver()
        assert len(records) == 1
        assert len(service.undeliverable) == 1
        request_id, reason = service.undeliverable[0]
        assert "kbps free" in reason
        # The rejected request rolled back cleanly: capacity for exactly
        # one 4000 kbps reservation is in use on each crossed interface.
        for interface, is_ingress in ((crossing.ingress, True), (crossing.egress, False)):
            calendar = service.admission.calendar(interface, is_ingress, "active")
            assert calendar.peak_commitment(start, expiry) == 4000

    def test_expire_commitments_garbage_collects(self, world):
        deployment = world["deployment"]
        host = deployment.new_host(funding_sui=100)
        purchase_path(
            deployment,
            host,
            as_crossings(world["path"]),
            start=T0 + 6000,
            expiry=T0 + 6600,
            bandwidth_kbps=4000,
        )
        service = deployment.service(as_crossings(world["path"])[0].isd_as)
        assert service.expire_commitments(T0 + 100_000) > 0
        remaining = sum(
            calendar.commitment_count
            for calendar in service.admission._calendars.values()
        )
        assert remaining == 0


class TestDeploymentKnobs:
    def test_scarcity_pricer_raises_successive_listing_prices(self):
        clock = SimClock(float(T0))
        topology = linear_topology(2)
        deployment = deploy_market(
            topology,
            clock=clock,
            asset_duration=3600,
            asset_bandwidth_kbps=1_000_000,
            interface_capacity_kbps=4_000_000,
            pricer=ScarcityPricer(),
        )
        service = deployment.service(topology.ases[0].isd_as)
        prices = []
        for _ in range(3):
            submitted = service.issue_and_list(
                deployment.marketplace, 1, True, 1_000_000, T0, T0 + 3600, 50
            )
            assert submitted.effects.ok
            listing = deployment.ledger.get_object(
                submitted.effects.returns[1]["listing"]
            )
            prices.append(listing.payload["price_micromist_per_unit"])
        assert prices == sorted(prices) and prices[-1] > prices[0]
        # Deploy issued the first 1 Gbps slice, so 4 Gbps is now full: the
        # next slice must bounce.
        with pytest.raises(AdmissionRejected):
            service.issue_and_list(
                deployment.marketplace, 1, True, 1_000_000, T0, T0 + 3600, 50
            )

    def test_admission_policy_passed_to_services(self):
        clock = SimClock(float(T0))
        topology = linear_topology(2)
        deployment = deploy_market(
            topology,
            clock=clock,
            asset_duration=3600,
            # Seed issuance takes exactly the 50% share the policy allows.
            interface_capacity_kbps=20_000_000,
            admission_policy=ProportionalShare(0.5),
        )
        service = deployment.service(topology.ases[0].isd_as)
        assert isinstance(service.admission.policy, ProportionalShare)
