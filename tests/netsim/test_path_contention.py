"""Path-wide contention experiment: mixed per-AS policy, atomic rollback."""

from repro.netsim import linear_path, path_contention_experiment
from repro.telemetry import ExperimentTelemetry


class TestPathContentionExperiment:
    def test_no_hop_oversells_under_contention(self):
        topology, path = linear_path(3)
        result = path_contention_experiment(topology, path, num_buyers=8)
        assert result.admitted and result.rejected
        assert not result.oversold
        for peak, capacity in zip(result.hop_peaks_kbps, result.hop_capacities_kbps):
            assert peak <= capacity

    def test_each_hop_runs_its_own_allocation_mode(self):
        topology, path = linear_path(3)
        result = path_contention_experiment(topology, path, num_buyers=6)
        assert len(set(result.hop_modes)) == 3

    def test_mid_path_failure_leaves_calendars_byte_identical(self):
        topology, path = linear_path(3)
        result = path_contention_experiment(topology, path, num_buyers=6)
        assert result.rollback_restores_state

    def test_path_auction_settles_and_conserves_escrow(self):
        topology, path = linear_path(3)
        result = path_contention_experiment(topology, path, num_buyers=6)
        assert result.escrow_conserved
        assert result.path_auction_winners == 1

    def test_telemetry_captures_the_whole_lifecycle_in_one_trace(self):
        topology, path = linear_path(3)
        telemetry = ExperimentTelemetry("path_contention_experiment")
        path_contention_experiment(topology, path, num_buyers=6, telemetry=telemetry)
        snapshot = telemetry.to_dict()
        traces = {trace["name"]: trace for trace in snapshot["traces"]}
        assert "traced-path" in traces
        names = set()
        for span in traces["traced-path"]["spans"]:
            names.add(span["name"])
            names.update(event["name"] for event in span.get("events", []))
        for expected in (
            "path.screen",
            "path.commit",
            "path_bid.placed",
            "path_auction.settle",
            "path_bid.settled",
            "path.redeem",
            "path.rollback",
        ):
            assert expected in names, expected
        assert snapshot["extra"]["path_contention"]["oversold"] is False
