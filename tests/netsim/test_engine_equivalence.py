"""Experiments run unchanged on every shard-engine backend.

The boundary's headline promise: pointing a whole workload at the
multiprocess backend changes *where* calendars live, never *what* they
answer — every buyer's admission outcome, price, and peak is identical
to the in-process run, seed for seed.
"""

from repro.netsim import (
    auction_experiment,
    flex_market_experiment,
    linear_path,
    path_contention_experiment,
)
from repro.shardengine import EngineSpec

SIM_SHARD = 600.0
MP = EngineSpec(kind="multiprocess", shard_seconds=SIM_SHARD, num_workers=2)
IN_PROCESS = EngineSpec(kind="sharded", shard_seconds=SIM_SHARD)


def test_auction_experiment_outcomes_identical_across_backends():
    topology, path = linear_path(3)
    results = [
        auction_experiment(topology, path, duration=0, seed=3, engine=engine)
        for engine in (IN_PROCESS, MP)
    ]

    def outcomes(result):
        return (
            [
                (b.buyer, b.posted_admitted, b.posted_paid_mist, b.posted_reason,
                 b.auction_won, b.auction_paid_mist, b.auction_reason)
                for b in result.buyers
            ],
            result.posted_revenue_mist,
            result.auction_revenue_mist,
            result.clearing_price_micromist,
        )

    assert outcomes(results[0]) == outcomes(results[1])


def test_flex_market_experiment_outcomes_identical_across_backends():
    results = [
        flex_market_experiment(duration=0.3, seed=1, engine=engine)
        for engine in (IN_PROCESS, MP)
    ]

    def outcomes(result):
        return (
            [
                (b.buyer, b.flex_start, b.offset, b.start, b.expiry,
                 b.paid_price_mist, b.estimated_price_mist)
                for b in result.buyers
            ],
            result.peak_window,
            result.peak_price_micromist,
            result.curve_prices,
        )

    assert outcomes(results[0]) == outcomes(results[1])


def test_path_contention_outcomes_identical_across_backends():
    topology, path = linear_path(3)
    results = [
        path_contention_experiment(topology, path, num_buyers=8, engine=engine)
        for engine in (IN_PROCESS, MP)
    ]

    def outcomes(result):
        return (
            [
                (b.buyer, b.admitted, b.failed_hop, b.reason)
                for b in result.buyers
            ],
            result.hop_peaks_kbps,
            result.rollback_restores_state,
            result.oversold,
        )

    assert outcomes(results[0]) == outcomes(results[1])


def test_path_contention_rollback_holds_on_the_multiprocess_backend():
    """The pathadm screen/commit fingerprints see through the boundary."""
    topology, path = linear_path(4)
    result = path_contention_experiment(topology, path, num_buyers=6, engine=MP)
    assert result.rollback_restores_state
    assert not result.oversold
