"""The closed loop beats the open one: reclamation experiment acceptance.

Three arms on the same topology, traffic, and seed — no overbooking,
static overbooking, and adaptive overbooking with reclamation.  The
closed loop must win on both revenue and reserved-traffic goodput while
never demoting an honest buyer's packets.
"""

import pytest

from repro.netsim import linear_path, reclamation_experiment


@pytest.fixture(scope="module")
def result():
    topology, path = linear_path(3)
    return reclamation_experiment(topology, path, duration=3.0)


def test_all_three_arms_ran(result):
    assert set(result.arms) == {"none", "static", "adaptive"}
    for arm in result.arms.values():
        assert arm.capacity_kbps > 0
        assert arm.buyers


def test_adaptive_revenue_beats_both_arms(result):
    adaptive = result.arm("adaptive")
    assert adaptive.revenue_mist >= result.arm("none").revenue_mist
    assert adaptive.revenue_mist >= result.arm("static").revenue_mist


def test_adaptive_goodput_beats_both_arms(result):
    adaptive = result.arm("adaptive")
    assert adaptive.reserved_goodput_bps >= result.arm("none").reserved_goodput_bps
    assert adaptive.reserved_goodput_bps >= result.arm("static").reserved_goodput_bps


def test_no_honest_buyer_is_ever_demoted(result):
    for arm in result.arms.values():
        assert arm.honest_demotions == 0, arm.arm


def test_reclamation_only_happens_in_the_adaptive_arm(result):
    assert result.arm("none").reclaim_events == 0
    assert result.arm("static").reclaim_events == 0
    adaptive = result.arm("adaptive")
    assert adaptive.reclaim_events > 0
    assert adaptive.reclaimed_kbps > 0
    assert adaptive.false_reclaims == 0  # no-shows here never send


def test_adaptive_factor_learned_from_no_shows(result):
    # Half the early buyers are no-shows, so the learned factor must have
    # moved off 1.0 — and stay inside the configured ceiling.
    adaptive = result.arm("adaptive")
    assert 1.0 < adaptive.live_factor <= 3.0
    assert result.arm("static").live_factor == pytest.approx(1.25)
    assert result.arm("none").live_factor == 1.0


def test_closed_loop_admits_more_reserved_buyers(result):
    counts = {name: len(arm.reserved_buyers) for name, arm in result.arms.items()}
    assert counts["adaptive"] > counts["static"] > counts["none"]


def test_late_buyers_queue_until_reclamation_frees_capacity(result):
    adaptive = result.arm("adaptive")
    late = [b for b in adaptive.buyers if b.kind == "late" and b.reserved]
    assert late, "reclamation never freed room for a late buyer"
    for buyer in late:
        assert buyer.admitted_at is not None and buyer.admitted_at > 0
