"""Network simulator: event loop, links, metrics, and the QoS experiment."""

import pytest

from repro.clock import SimClock
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.metrics import FlowMetrics
from repro.netsim.scenarios import (
    auction_experiment,
    congestion_experiment,
    contention_experiment,
    flex_market_experiment,
    linear_path,
)


class TestEventLoop:
    def test_events_run_in_time_order(self):
        loop = EventLoop(SimClock(0.0))
        order = []
        loop.schedule(2.0, lambda: order.append("b"))
        loop.schedule(1.0, lambda: order.append("a"))
        loop.schedule(3.0, lambda: order.append("c"))
        loop.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_run_until_stops_at_boundary(self):
        loop = EventLoop(SimClock(0.0))
        fired = []
        loop.schedule(5.0, lambda: fired.append(1))
        loop.run_until(4.0)
        assert not fired and loop.now == 4.0
        loop.run_until(6.0)
        assert fired

    def test_past_scheduling_rejected(self):
        loop = EventLoop(SimClock(10.0))
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda: None)

    def test_cascading_events(self):
        loop = EventLoop(SimClock(0.0))
        hits = []

        def chain(n):
            hits.append(n)
            if n < 5:
                loop.schedule(0.1, lambda: chain(n + 1))

        loop.schedule(0.0, lambda: chain(0))
        loop.run_until(1.0)
        assert hits == [0, 1, 2, 3, 4, 5]

    def test_events_run_counts_across_calls(self):
        loop = EventLoop(SimClock(0.0))
        assert loop.events_run == 0
        for delay in (1.0, 2.0, 3.0):
            loop.schedule(delay, lambda: None)
        loop.run_until(1.5)
        assert loop.events_run == 1
        loop.run_until(10.0)
        assert loop.events_run == 3

    def test_equal_timestamps_run_fifo(self):
        loop = EventLoop(SimClock(0.0))
        order = []
        for label in range(6):
            loop.schedule_at(1.0, lambda label=label: order.append(label))
        loop.run_until(2.0)
        assert order == [0, 1, 2, 3, 4, 5]


class TestLink:
    def test_serialization_delay(self):
        loop = EventLoop(SimClock(0.0))
        link = Link(loop, rate_bps=8000, propagation_delay=0.5)  # 1 B/ms
        arrivals = []
        link.send("pkt", 100, priority=False, deliver=lambda p: arrivals.append(loop.now))
        loop.run_until(10.0)
        # 100 B at 1 kB/s = 0.1 s transmission + 0.5 s propagation.
        assert arrivals == [pytest.approx(0.6)]

    def test_strict_priority_ordering(self):
        loop = EventLoop(SimClock(0.0))
        link = Link(loop, rate_bps=8000, propagation_delay=0.0)
        order = []
        # First packet occupies the transmitter, then one BE + one priority
        # queue behind it: the priority packet must transmit first.
        link.send("first", 100, False, lambda p: order.append(p))
        link.send("be", 100, False, lambda p: order.append(p))
        link.send("prio", 100, True, lambda p: order.append(p))
        loop.run_until(10.0)
        assert order == ["first", "prio", "be"]

    def test_per_class_buffers(self):
        loop = EventLoop(SimClock(0.0))
        link = Link(loop, rate_bps=80, buffer_bytes=150)
        for _ in range(10):
            link.send("be", 100, False, lambda p: None)
        assert link.stats.dropped_best_effort > 0
        accepted = link.send("prio", 100, True, lambda p: None)
        assert accepted  # the flood did not consume the priority buffer

    def test_utilization(self):
        loop = EventLoop(SimClock(0.0))
        link = Link(loop, rate_bps=800, propagation_delay=0.0)
        link.send("p", 100, False, lambda p: None)  # 1 s transmission
        loop.run_until(2.0)
        assert link.utilization(2.0) == pytest.approx(0.5)


class TestMetrics:
    def test_goodput_and_loss(self):
        metrics = FlowMetrics(1)
        metrics.record_sent(1000, 0.0)
        metrics.record_sent(1000, 1.0)
        metrics.record_received(1000, 0.0, 0.5)
        assert metrics.loss_rate == pytest.approx(0.5)
        assert metrics.goodput_bps(duration=1.0) == pytest.approx(8000)

    def test_percentiles(self):
        metrics = FlowMetrics(1)
        for i in range(10):
            metrics.record_sent(10, float(i))
            metrics.record_received(10, float(i), float(i) + (i + 1) / 100)
        assert metrics.latency_percentile(0) == pytest.approx(0.01)
        assert metrics.latency_percentile(100) == pytest.approx(0.10)


class TestQosExperiment:
    def test_reservation_shields_from_flood(self):
        """Property D2: reserved goodput survives, best effort collapses."""
        topology, path = linear_path(3)
        unprotected = congestion_experiment(
            topology, path, protected=False, duration=1.5
        )
        protected = congestion_experiment(
            topology, path, protected=True, duration=1.5
        )
        assert protected.victim["goodput_mbps"] > 1.8  # sending at 2 Mbps
        assert protected.victim["loss_rate"] < 0.05
        assert unprotected.victim["goodput_mbps"] < 1.0
        assert unprotected.victim["loss_rate"] > 0.3
        # Priority traffic also sees far lower queueing delay.
        assert protected.victim["p50_ms"] < unprotected.victim["p50_ms"] / 2

    def test_unused_reservation_leaves_bandwidth_to_best_effort(self):
        """§4.3: unused reserved bandwidth is not wasted."""
        topology, path = linear_path(3)
        result = congestion_experiment(
            topology, path, protected=True,
            victim_rate_bps=500_000.0,  # reserves more than it sends
            flood_rate_bps=20_000_000.0,
            link_rate_bps=10_000_000.0,
            duration=1.5,
        )
        # The flood still gets ~ the remaining capacity of the bottleneck.
        assert result.attacker["goodput_mbps"] > 8.0


class TestContentionExperiment:
    def test_rejected_buyers_fall_to_best_effort(self):
        """Admission splits the crowd: admitted keep their goodput, rejected
        collapse onto the leftover best-effort capacity."""
        topology, path = linear_path(3)
        result = contention_experiment(topology, path, num_buyers=8, duration=1.5)
        # 8000 kbps reservable / 2500 kbps per request -> exactly 3 admitted.
        assert len(result.admitted) == 3
        assert len(result.rejected) == 5
        for buyer in result.admitted:
            assert buyer.metrics["goodput_mbps"] > 1.8  # sending at 2 Mbps
            assert buyer.metrics["loss_rate"] < 0.05
        for buyer in result.rejected:
            assert buyer.metrics["goodput_mbps"] < 1.2
            assert buyer.metrics["loss_rate"] > 0.2
        # The bottleneck is saturated by the total offered load.
        assert result.bottleneck_utilization > 0.9

    def test_scarcity_prices_rise_as_interface_fills(self):
        topology, path = linear_path(3)
        result = contention_experiment(topology, path, num_buyers=6, duration=0.5)
        quotes = [b.quoted_price_micromist for b in result.buyers]
        assert quotes == sorted(quotes)
        assert quotes[-1] > quotes[0]
        # Rejected buyers saw the saturated-quote price.
        assert all(
            b.quoted_price_micromist >= quotes[len(result.admitted) - 1]
            for b in result.rejected
        )

    def test_everyone_admitted_when_capacity_suffices(self):
        topology, path = linear_path(3)
        result = contention_experiment(
            topology,
            path,
            num_buyers=3,
            per_buyer_kbps=1000,
            duration=0.5,
        )
        assert len(result.admitted) == 3 and not result.rejected


class TestAuctionExperiment:
    def test_auction_beats_posted_revenue_without_oversell(self):
        """The headline claim: under the contention workload a sealed-bid
        uniform-price auction extracts at least posted-scarcity revenue,
        allocates the window to the highest-value buyers, and never
        commits past physical capacity."""
        topology, path = linear_path(3)
        result = auction_experiment(topology, path, duration=0.5)
        assert result.auction_revenue_mist >= result.posted_revenue_mist
        assert not result.oversold
        assert result.posted_peak_kbps <= result.capacity_kbps
        assert result.auction_peak_kbps <= result.capacity_kbps
        # The auction clears above the reserve when demand contends...
        assert result.clearing_price_micromist >= result.reserve_micromist
        # ...and captures the full achievable valuation (posted allocates
        # by arrival order, so it usually captures less).
        assert result.efficiency("auction") == pytest.approx(1.0)
        assert result.efficiency("posted") <= result.efficiency("auction")

    def test_winners_protected_losers_best_effort_on_the_data_plane(self):
        topology, path = linear_path(3)
        result = auction_experiment(topology, path, duration=0.5)
        winners = [b for b in result.buyers if b.auction_won]
        losers = [b for b in result.buyers if not b.auction_won]
        assert winners and losers
        for winner in winners:
            assert winner.metrics["goodput_mbps"] > 1.8
            assert winner.auction_paid_mist > 0
        # Everyone contends, so the losers' best-effort goodput collapses
        # below the reserved flows'.
        worst_winner = min(w.metrics["goodput_mbps"] for w in winners)
        best_loser = max(l.metrics["goodput_mbps"] for l in losers)
        assert best_loser < worst_winner

    def test_clearing_only_run_skips_the_packet_phase(self):
        topology, path = linear_path(3)
        result = auction_experiment(topology, path, duration=0, seed=3)
        assert all(b.metrics == {} for b in result.buyers)
        assert result.bottleneck_utilization == 0.0
        assert not result.oversold

    def test_uniform_price_is_single_and_within_bids(self):
        topology, path = linear_path(3)
        result = auction_experiment(topology, path, duration=0, seed=5)
        paid = {b.auction_paid_mist for b in result.buyers if b.auction_won}
        assert len(paid) == 1  # ONE price for every winner
        for buyer in result.buyers:
            if buyer.auction_won:
                assert result.clearing_price_micromist <= buyer.valuation_micromist


class TestFlexMarketExperiment:
    def test_flexible_buyer_pays_the_valley_price(self):
        """V2 purchase workflow end to end: a zero-flex probe pays the
        scarcity-priced peak restock, a flexible one slides into the
        post-peak valley, pays the base price, and its reservations
        protect its flow on the data plane all the same."""
        result = flex_market_experiment(flex_values=(0, 1800), duration=0.5)
        assert result.peak_price_micromist > result.base_price_micromist
        rigid, flexible = result.buyers
        assert rigid.offset == 0
        assert flexible.offset > 0  # out of the peak window
        assert flexible.paid_price_mist < rigid.paid_price_mist
        assert flexible.estimated_price_mist == flexible.paid_price_mist
        for buyer in result.buyers:  # both shielded from the flood
            assert buyer.metrics["goodput_mbps"] > 1.8
            assert buyer.metrics["loss_rate"] < 0.05
        # The price curve exposes the peak premium over the valley floor.
        finite = [price for price in result.curve_prices if price != float("inf")]
        assert max(finite) > min(finite)
