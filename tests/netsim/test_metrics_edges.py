"""Regression tests for FlowMetrics edge cases (ISSUE 6 satellite).

No samples received, zero-duration windows, receiver-only flows, and
duplicate deliveries must all yield defined values — plus the port onto
the shared telemetry histogram must agree with the exact latency list.
"""

import math

import pytest

from repro.netsim.metrics import LATENCY_BOUNDS, FlowMetrics
from repro.telemetry.registry import Histogram


class TestNoSamples:
    def test_percentile_of_empty_flow_is_nan(self):
        metrics = FlowMetrics(1)
        assert math.isnan(metrics.latency_percentile(50))

    def test_out_of_range_percentile_raises_even_when_empty(self):
        metrics = FlowMetrics(1)
        with pytest.raises(ValueError):
            metrics.latency_percentile(101)
        with pytest.raises(ValueError):
            metrics.latency_percentile(-1)

    def test_empty_flow_summary_is_defined(self):
        summary = FlowMetrics(1).summary()
        assert summary["loss_rate"] == 0.0
        assert summary["goodput_mbps"] == 0.0
        assert summary["p50_ms"] is None
        assert summary["p99_ms"] is None

    def test_sent_but_nothing_received(self):
        metrics = FlowMetrics(1)
        metrics.record_sent(1000, 0.0)
        assert metrics.goodput_bps() == 0.0
        assert metrics.loss_rate == 1.0
        assert math.isnan(metrics.latency_quantile(0.5))


class TestZeroDuration:
    def test_explicit_zero_duration(self):
        metrics = FlowMetrics(1)
        metrics.record_sent(1000, 0.0)
        metrics.record_received(1000, 0.0, 0.1)
        assert metrics.goodput_bps(duration=0.0) == 0.0
        assert metrics.goodput_bps(duration=-1.0) == 0.0

    def test_instantaneous_window(self):
        # Single packet sent and received at the same instant: the active
        # window is zero-length, so the rate is undefined -> 0.0, not inf.
        metrics = FlowMetrics(1)
        metrics.record_sent(1000, 5.0)
        metrics.record_received(1000, 5.0, 5.0)
        assert metrics.goodput_bps() == 0.0


class TestReceiverOnlyFlow:
    def test_window_falls_back_to_reception_times(self):
        # A sink that only sees deliveries (no record_sent) still reports a
        # rate over its observed reception window.
        metrics = FlowMetrics(1)
        metrics.record_received(1000, 0.0, 1.0)
        metrics.record_received(1000, 1.0, 3.0)
        assert metrics.first_sent is None
        assert metrics.goodput_bps() == pytest.approx(2000 * 8 / 2.0)


class TestDuplicateDeliveries:
    def test_loss_rate_clamped_to_zero(self):
        metrics = FlowMetrics(1)
        metrics.record_sent(100, 0.0)
        metrics.record_received(100, 0.0, 0.1)
        metrics.record_received(100, 0.0, 0.2)  # duplicate delivery
        assert metrics.loss_rate == 0.0


class TestSharedHistogramPort:
    def test_every_observation_mirrors_into_the_histogram(self):
        metrics = FlowMetrics(1)
        for i in range(10):
            metrics.record_received(10, float(i), float(i) + (i + 1) / 100)
        assert isinstance(metrics.histogram, Histogram)
        assert metrics.histogram.count == len(metrics.latencies) == 10
        assert metrics.histogram.sum == pytest.approx(sum(metrics.latencies))

    def test_bucketed_quantile_brackets_the_exact_percentile(self):
        metrics = FlowMetrics(1)
        for i in range(100):
            metrics.record_received(10, 0.0, 0.001 + i * 0.0005)
        exact = metrics.latency_percentile(50)
        estimate = metrics.latency_quantile(0.5)
        # The estimate sits within one bucket of the exact value.
        edges = [0.0, *LATENCY_BOUNDS.tolist()]
        bucket = next(
            (lo, hi) for lo, hi in zip(edges, edges[1:]) if lo < exact <= hi
        )
        assert bucket[0] <= estimate <= bucket[1]

    def test_histograms_are_per_flow(self):
        one, two = FlowMetrics(1), FlowMetrics(2)
        one.record_received(10, 0.0, 0.5)
        assert one.histogram.count == 1
        assert two.histogram.count == 0

    def test_exact_percentiles_unchanged_by_the_port(self):
        # The seed behaviour the netsim suite asserts on must survive.
        metrics = FlowMetrics(1)
        for i in range(10):
            metrics.record_sent(10, float(i))
            metrics.record_received(10, float(i), float(i) + (i + 1) / 100)
        assert metrics.latency_percentile(0) == pytest.approx(0.01)
        assert metrics.latency_percentile(100) == pytest.approx(0.10)
