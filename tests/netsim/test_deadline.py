"""The deadline-transfer netsim experiment and its differential invariants.

``deadline_experiment`` itself asserts the per-transfer invariants
inline (deadline hit iff the oracle says feasible, >= 90% of oracle
bytes, on-chain spend == planned spend == oracle cost when feasible);
these tests drive it at small scale, check the aggregate view, and pin
the sharded backend.
"""

from repro.netsim import deadline_experiment
from repro.shardengine import EngineSpec


def test_deadline_experiment_aggregates():
    result = deadline_experiment(
        num_ases=2, transfer_count=4, horizon=1200, seed=5
    )
    assert len(result.records) == 4
    assert result.bytes_requested_total > 0
    assert any(record.deadline_hit for record in result.records)
    assert result.bytes_vs_oracle >= 0.9
    for record in result.records:
        assert record.bytes_moved <= record.bytes_requested
        assert record.deadline_hit == record.oracle_feasible
        assert record.spend_mist <= (
            record.budget_mist
            if record.budget_mist is not None
            else record.spend_mist
        )
        if record.bytes_moved:
            assert record.reservations > 0 and record.legs > 0


def test_deadline_experiment_runs_on_sharded_backend():
    result = deadline_experiment(
        num_ases=2,
        transfer_count=3,
        horizon=1200,
        seed=5,
        shard_seconds=600.0,
        engine=EngineSpec(kind="sharded", shard_seconds=600.0),
    )
    assert len(result.records) == 3
    assert result.bytes_vs_oracle >= 0.9
