"""Analysis helpers: percentiles, box stats, tables, plots."""

import pytest

from repro.analysis import (
    BoxStats,
    fraction_below,
    line_plot,
    percentile,
    render_table,
)


class TestStats:
    def test_percentile_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == pytest.approx(2.5)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_box_stats_ordering(self):
        stats = BoxStats.of([float(i) for i in range(100)])
        assert stats.p5 <= stats.q1 <= stats.median <= stats.q3 <= stats.p95
        assert stats.count == 100

    def test_fraction_below(self):
        assert fraction_below([1.0, 2.0, 3.0, 4.0], 3.0) == pytest.approx(0.5)


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["name", "v"], [["long-name", "1"], ["x", "22"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width

    def test_table_title(self):
        text = render_table(["a"], [["1"]], title="Table 1")
        assert text.startswith("Table 1")

    def test_line_plot_contains_legend(self):
        plot = line_plot({"scion": [(1, 10.0), (2, 20.0)]}, title="t")
        assert "a = scion" in plot
        assert "t" in plot

    def test_empty_plot(self):
        assert line_plot({}) == "(empty plot)"
