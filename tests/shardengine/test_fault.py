"""Crash-recovery tests: SIGKILL a worker, supervisor restores, retry wins.

The contract under test (docs/scaling.md): when a worker dies
mid-operation the whole pool restarts from the last snapshots plus the
journal of operations committed *since* — the in-flight operation is
excluded — so the calendars come back byte-identical to the moment
before the failed call, the caller gets a clean retryable
:class:`WorkerCrashed`, and a retry produces exactly what the original
would have (same commitment ids included).
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.admission import ShardedCalendar
from repro.pathadm import calendar_fingerprint
from repro.shardengine import (
    EngineError,
    EngineRetryable,
    EngineSpec,
    WorkerCrashed,
    build_engine,
)

SHARD = 100.0
KEY = ("fault", 0, True)
CAPACITY = 1_000_000


@pytest.fixture
def pair():
    reference = ShardedCalendar(CAPACITY, shard_seconds=SHARD)
    engine = build_engine(
        EngineSpec(kind="multiprocess", shard_seconds=SHARD, num_workers=2)
    )
    try:
        yield reference, engine.calendar(KEY, CAPACITY), engine
    finally:
        engine.close()


def _seed(calendar) -> None:
    for index in range(6):
        calendar.commit(100 + index, index * 130.0, index * 130.0 + 200.0, "seed")


def _batch():
    rng = np.random.default_rng(99)
    starts = rng.integers(0, 900, 40).astype(np.float64)
    ends = starts + rng.integers(1, 350, 40)
    bandwidths = rng.integers(1, 500, 40)
    return bandwidths, starts, ends


def test_worker_crashed_is_retryable():
    assert issubclass(WorkerCrashed, EngineRetryable)
    assert issubclass(EngineRetryable, EngineError)


def test_sigkill_mid_commit_batch_rolls_back_byte_identically(pair):
    reference, calendar, engine = pair
    _seed(reference)
    _seed(calendar)
    engine.checkpoint()
    # More traffic *after* the checkpoint: recovery must replay the
    # journal tail, not just restore the snapshot.
    reference.commit(777, 50.0, 450.0, "tail")
    calendar.commit(777, 50.0, 450.0, "tail")
    before = calendar_fingerprint(reference)
    assert calendar_fingerprint(calendar) == before

    bandwidths, starts, ends = _batch()
    engine.inject_delay(1, 2.0)
    os.kill(engine.worker_pid(1), signal.SIGKILL)
    with pytest.raises(WorkerCrashed):
        calendar.commit_batch(bandwidths, starts, ends, tag="doomed")

    assert engine.restarts == 1
    # The failed batch is invisible: byte-identical to pre-batch state.
    assert calendar_fingerprint(calendar) == before

    # The retry succeeds and matches the reference exactly — ids included,
    # because the crashed attempt burned none.
    ref_pieces = reference.commit_batch(bandwidths, starts, ends, tag="doomed")
    eng_pieces = calendar.commit_batch(bandwidths, starts, ends, tag="doomed")
    assert [p.commitment_id for p in eng_pieces] == [
        p.commitment_id for p in ref_pieces
    ]
    assert calendar_fingerprint(calendar) == calendar_fingerprint(reference)


def test_sigkill_while_parent_waits_on_reply(pair):
    """Kill after the op reached the worker: the gather path recovers too."""
    reference, calendar, engine = pair
    _seed(reference)
    _seed(calendar)
    before = calendar_fingerprint(calendar)
    bandwidths, starts, ends = _batch()

    engine.inject_delay(0, 2.0)  # worker 0 sleeps; parent will block in gather
    pid = engine.worker_pid(0)
    killer = threading.Timer(0.3, os.kill, (pid, signal.SIGKILL))
    killer.start()
    try:
        with pytest.raises(WorkerCrashed):
            calendar.commit_batch(bandwidths, starts, ends)
    finally:
        killer.cancel()
    assert engine.restarts == 1
    assert calendar_fingerprint(calendar) == before
    # Engine is fully usable after recovery.
    calendar.commit(123, 0.0, 250.0, "after")
    reference.commit(123, 0.0, 250.0, "after")
    assert calendar_fingerprint(calendar) == calendar_fingerprint(reference)


def test_crash_mid_release_leaves_commitment_intact(pair):
    reference, calendar, engine = pair
    _seed(reference)
    _seed(calendar)
    victim = calendar.commit(500, 20.0, 480.0, "victim")
    reference.commit(500, 20.0, 480.0, "victim")
    before = calendar_fingerprint(calendar)

    engine.inject_delay(0, 2.0)
    os.kill(engine.worker_pid(0), signal.SIGKILL)
    with pytest.raises(WorkerCrashed):
        calendar.release(victim.commitment_id)

    assert calendar_fingerprint(calendar) == before
    # Nothing was released anywhere: the retry still finds the commitment.
    released = calendar.release(victim.commitment_id)
    assert (released.start, released.end) == (20.0, 480.0)


def test_repeated_crashes_keep_recovering(pair):
    reference, calendar, engine = pair
    _seed(reference)
    _seed(calendar)
    for round_index in range(2):
        engine.inject_delay(1, 2.0)
        os.kill(engine.worker_pid(1), signal.SIGKILL)
        with pytest.raises(WorkerCrashed):
            calendar.commit(50, 0.0, 950.0, f"doomed-{round_index}")
        calendar.commit(50, 0.0, 950.0, f"retry-{round_index}")
        reference.commit(50, 0.0, 950.0, f"retry-{round_index}")
    assert engine.restarts == 2
    assert calendar_fingerprint(calendar) == calendar_fingerprint(reference)


def test_sigkill_mid_reclaim_rolls_back_byte_identically(pair):
    """A worker dying inside a reclaim batch leaves no half-shrunk shards."""
    reference, calendar, engine = pair
    _seed(reference)
    _seed(calendar)
    # Spans every shard, so the reclaim scatter reaches both workers.
    victim_ref = reference.commit(800, 0.0, 950.0, "victim")
    victim = calendar.commit(800, 0.0, 950.0, "victim")
    assert victim.commitment_id == victim_ref.commitment_id
    before = calendar_fingerprint(reference)
    assert calendar_fingerprint(calendar) == before

    engine.inject_delay(0, 2.0)
    os.kill(engine.worker_pid(0), signal.SIGKILL)
    with pytest.raises(WorkerCrashed):
        calendar.reclaim(victim.commitment_id, 25)

    assert engine.restarts == 1
    # The failed reclaim is invisible: every shard carries the old 800.
    assert calendar_fingerprint(calendar) == before
    assert calendar.get(victim.commitment_id).bandwidth_kbps == 800

    # The retry lands the same target everywhere and matches the reference.
    reference.reclaim(victim_ref.commitment_id, 25)
    shrunk = calendar.reclaim(victim.commitment_id, 25)
    assert shrunk.bandwidth_kbps == 25
    assert calendar_fingerprint(calendar) == calendar_fingerprint(reference)
    # The freed bandwidth is actually available again.
    assert calendar.headroom(0.0, 950.0) == reference.headroom(0.0, 950.0)


def test_recovery_waits_out_slow_checkpointed_state(pair):
    """Snapshot/journal state survives when the *other* worker dies."""
    reference, calendar, engine = pair
    _seed(reference)
    _seed(calendar)
    engine.checkpoint()
    time.sleep(0.05)
    engine.inject_delay(0, 2.0)
    os.kill(engine.worker_pid(0), signal.SIGKILL)
    with pytest.raises(WorkerCrashed):
        calendar.commit(60, 0.0, 950.0, "doomed")
    # Worker 1 was healthy but is restarted too (all-or-nothing pool):
    # its state must have come back through its own snapshot + journal.
    assert calendar_fingerprint(calendar) == calendar_fingerprint(reference)
