"""Shard-engine boundary tests: specs, backends, surface equivalence.

The multiprocess backend must be indistinguishable from the in-process
:class:`ShardedCalendar` it mirrors — same admission answers, same
commitment ids, byte-identical fingerprints — across the whole message
surface (commit, batches, release, expiry, surgery, vectorized peaks).
"""

import numpy as np
import pytest

from repro.admission import CapacityCalendar, ShardedCalendar
from repro.pathadm import calendar_fingerprint
from repro.shardengine import (
    MONOLITHIC,
    MULTIPROCESS,
    SHARDED,
    EngineSpec,
    build_engine,
)

SHARD = 100.0
KEY = ("iface", 1, True)
CAPACITY = 100_000


@pytest.fixture
def engines():
    """An in-process sharded reference and a 2-worker multiprocess engine."""
    reference = ShardedCalendar(CAPACITY, shard_seconds=SHARD)
    engine = build_engine(
        EngineSpec(kind=MULTIPROCESS, shard_seconds=SHARD, num_workers=2)
    )
    try:
        yield reference, engine.calendar(KEY, CAPACITY), engine
    finally:
        engine.close()


def assert_twins(reference, calendar) -> None:
    assert calendar_fingerprint(calendar) == calendar_fingerprint(reference)


# -- spec resolution ----------------------------------------------------------


def test_resolve_none_is_monolithic():
    spec = EngineSpec.resolve(None)
    assert spec.kind == MONOLITHIC
    assert spec.shard_seconds is None


def test_resolve_shard_seconds_selects_in_process_sharding():
    spec = EngineSpec.resolve(None, shard_seconds=3600.0)
    assert (spec.kind, spec.shard_seconds) == (SHARDED, 3600.0)


def test_resolve_kind_string_defaults_the_width():
    spec = EngineSpec.resolve(MULTIPROCESS)
    assert spec.kind == MULTIPROCESS
    assert spec.shard_seconds == 86_400.0
    assert EngineSpec.resolve(MULTIPROCESS, 60.0).shard_seconds == 60.0


def test_resolve_passes_specs_through():
    spec = EngineSpec(kind=SHARDED, shard_seconds=10.0)
    assert EngineSpec.resolve(spec, shard_seconds=99.0) is spec


def test_spec_validation():
    with pytest.raises(ValueError):
        EngineSpec(kind="quantum")
    with pytest.raises(ValueError):
        EngineSpec(kind=MONOLITHIC, shard_seconds=10.0)
    with pytest.raises(ValueError):
        EngineSpec(kind=SHARDED)
    with pytest.raises(ValueError):
        EngineSpec(kind=MULTIPROCESS, shard_seconds=10.0, num_workers=0)


def test_in_process_backends_build_plain_calendars():
    mono = build_engine(EngineSpec(kind=MONOLITHIC))
    assert type(mono.calendar(KEY, CAPACITY)) is CapacityCalendar
    assert mono.calendar(KEY, CAPACITY) is mono.calendar(KEY, CAPACITY)
    sharded = build_engine(EngineSpec(kind=SHARDED, shard_seconds=SHARD))
    calendar = sharded.calendar(KEY, CAPACITY)
    assert type(calendar) is ShardedCalendar
    assert calendar.shard_seconds == SHARD
    mono.close()  # no-ops, must not raise
    sharded.close()


# -- multiprocess surface equivalence -----------------------------------------


def test_commit_and_queries_match(engines):
    reference, calendar, _ = engines
    for cal in (reference, calendar):
        cal.commit(500, 50.0, 250.0, "alice")  # spans 3 shards
        cal.commit(300, 220.0, 280.0, "bob")
        cal.commit(200, 0.0, 1000.0, "")  # spans 10 shards
    assert calendar.peak_commitment(0, 1000) == reference.peak_commitment(0, 1000)
    assert calendar.tag_peak("alice", 0, 300) == reference.tag_peak("alice", 0, 300)
    assert calendar.mean_commitment(0, 1000) == reference.mean_commitment(0, 1000)
    assert calendar.headroom(0, 1000) == reference.headroom(0, 1000)
    assert calendar.commitment_count == reference.commitment_count
    assert calendar.boundary_count == reference.boundary_count
    assert_twins(reference, calendar)


def test_commitment_ids_match_the_reference(engines):
    reference, calendar, _ = engines
    ref_ids = [reference.commit(100, i * 37.0, i * 37.0 + 90.0).commitment_id
               for i in range(8)]
    eng_ids = [calendar.commit(100, i * 37.0, i * 37.0 + 90.0).commitment_id
               for i in range(8)]
    assert eng_ids == ref_ids


def test_try_commit_admits_and_rejects_identically(engines):
    reference, calendar, _ = engines
    assert calendar.try_commit(CAPACITY, 0.0, 150.0) is not None
    assert reference.try_commit(CAPACITY, 0.0, 150.0) is not None
    assert calendar.try_commit(1, 100.0, 120.0) is None
    assert reference.try_commit(1, 100.0, 120.0) is None
    assert_twins(reference, calendar)


def test_commit_batch_tracked_and_untracked_match(engines):
    reference, calendar, _ = engines
    rng = np.random.default_rng(7)
    starts = rng.integers(0, 900, 200).astype(np.float64)
    ends = starts + rng.integers(1, 350, 200)
    bandwidths = rng.integers(1, 500, 200)
    ref_pieces = reference.commit_batch(bandwidths, starts, ends, tag="t", track=True)
    eng_pieces = calendar.commit_batch(bandwidths, starts, ends, tag="t", track=True)
    assert [p.commitment_id for p in eng_pieces] == [
        p.commitment_id for p in ref_pieces
    ]
    reference.commit_batch(bandwidths, starts + 5, ends + 5, track=False)
    calendar.commit_batch(bandwidths, starts + 5, ends + 5, track=False)
    assert_twins(reference, calendar)


def test_release_and_expire_match(engines):
    reference, calendar, _ = engines
    handles = []
    for cal in (reference, calendar):
        ids = [cal.commit(100, i * 50.0, i * 50.0 + 170.0, "x").commitment_id
               for i in range(10)]
        handles.append(ids)
    for ref_id, eng_id in zip(handles[0][::2], handles[1][::2]):
        released_ref = reference.release(ref_id)
        released_eng = calendar.release(eng_id)
        assert (released_eng.start, released_eng.end) == (
            released_ref.start, released_ref.end,
        )
    assert reference.expire(260.0) == calendar.expire(260.0)
    assert calendar.shards_dropped == reference.shards_dropped
    assert_twins(reference, calendar)


def test_release_unknown_commitment_raises_keyerror(engines):
    _, calendar, _ = engines
    with pytest.raises(KeyError):
        calendar.release(12345)


def test_surgery_ops_match(engines):
    reference, calendar, _ = engines
    for cal in (reference, calendar):
        first = cal.commit(400, 0.0, 240.0, "a")
        second = cal.commit(400, 240.0, 480.0, "a")
        left, right = cal.split_time(first.commitment_id, 120.0)
        low, high = cal.split_bandwidth(right.commitment_id, 150)
        cal.transfer(low.commitment_id, "b")
        _, second_high = cal.split_bandwidth(second.commitment_id, 150)
        # time-adjacent, equal bandwidth, spanning a shard boundary
        cal.fuse(high.commitment_id, second_high.commitment_id)
    assert_twins(reference, calendar)


def test_bulk_peak_matches_over_shared_memory(engines):
    reference, calendar, _ = engines
    rng = np.random.default_rng(11)
    starts = rng.integers(0, 900, 500).astype(np.float64)
    ends = starts + rng.integers(1, 350, 500)
    bandwidths = rng.integers(1, 500, 500)
    reference.commit_batch(bandwidths, starts, ends, track=False)
    calendar.commit_batch(bandwidths, starts, ends, track=False)
    probe_starts = rng.integers(0, 1200, 3000).astype(np.float64)
    probe_ends = probe_starts + rng.integers(1, 400, 3000)
    assert np.array_equal(
        calendar.bulk_peak(probe_starts, probe_ends),
        reference.bulk_peak(probe_starts, probe_ends),
    )


def test_errors_map_across_the_boundary(engines):
    from repro.admission import AdmissionRejected

    _, calendar, _ = engines
    committed = calendar.commit(100, 0.0, 50.0)
    # Worker-side ValueError arrives as a ValueError, not a crash.
    with pytest.raises(ValueError):
        calendar.split_bandwidth(committed.commitment_id, 100_000)
    with pytest.raises(ValueError):
        calendar.commit(100, 50.0, 50.0)  # empty window, parent-side check
    with pytest.raises(AdmissionRejected):
        calendar.admit(2 * CAPACITY, 0.0, 50.0)
    # The calendar still works after mapped errors (no poisoned workers).
    assert calendar.commitment_count == 1


def test_checkpoint_then_restore_preserves_fingerprint(engines):
    reference, calendar, engine = engines
    rng = np.random.default_rng(3)
    starts = rng.integers(0, 900, 50).astype(np.float64)
    ends = starts + rng.integers(1, 350, 50)
    bandwidths = rng.integers(1, 500, 50)
    reference.commit_batch(bandwidths, starts, ends, track=False)
    calendar.commit_batch(bandwidths, starts, ends, track=False)
    engine.checkpoint()
    # post-checkpoint traffic exercises snapshot + journal replay later
    reference.commit(250, 10.0, 500.0, "tail")
    calendar.commit(250, 10.0, 500.0, "tail")
    assert_twins(reference, calendar)


def test_engine_close_is_idempotent_and_reaps_workers(engines):
    import os

    _, calendar, engine = engines
    calendar.commit(100, 0.0, 50.0)
    pids = [engine.worker_pid(i) for i in range(2)]
    engine.close()
    engine.close()
    for pid in pids:
        with pytest.raises(OSError):
            os.kill(pid, 0)


def test_worker_metrics_merge_into_parent_registry():
    from repro.telemetry import MetricsRegistry, set_registry

    previous = set_registry(MetricsRegistry())
    try:
        engine = build_engine(
            EngineSpec(kind=MULTIPROCESS, shard_seconds=SHARD, num_workers=2)
        )
        try:
            calendar = engine.calendar(KEY, CAPACITY)
            calendar.commit(100, 0.0, 250.0)
            assert engine.collect_metrics() == 2
            from repro.telemetry import get_registry

            families = {f.name: f for f in get_registry().families()}
            ops = families["shardengine_worker_ops_total"]
            total = sum(child.value for _, child in ops.items())
            assert total > 0
        finally:
            engine.close()
    finally:
        set_registry(previous)
