"""Wire substrate: bit packing, bandwidth classes, packet timestamps."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wire import bwcls
from repro.wire.bitfields import BitPacker, BitUnpacker
from repro.wire.timestamps import PacketTimestamp, TimestampAllocator


class TestBitfields:
    def test_simple_roundtrip(self):
        packer = BitPacker().put(2, 2).put(200, 8).put(0, 1).put(21, 7).put(0, 14)
        data = packer.to_bytes()
        unpacker = BitUnpacker(data)
        assert [unpacker.take(w) for w in (2, 8, 1, 7, 14)] == [2, 200, 0, 21, 0]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            BitPacker().put(4, 2)

    def test_partial_byte_rejected(self):
        with pytest.raises(ValueError):
            BitPacker().put(1, 3).to_bytes()

    def test_take_beyond_end(self):
        unpacker = BitUnpacker(b"\x00")
        unpacker.take(8)
        with pytest.raises(ValueError):
            unpacker.take(1)

    @given(st.lists(st.integers(min_value=1, max_value=24), min_size=1, max_size=10))
    def test_roundtrip_property(self, widths):
        import random

        rng = random.Random(42)
        total = sum(widths)
        if total % 8 != 0:
            widths = widths + [8 - total % 8]
        values = [rng.randrange(1 << w) for w in widths]
        packer = BitPacker()
        for value, width in zip(values, widths):
            packer.put(value, width)
        unpacker = BitUnpacker(packer.to_bytes())
        assert [unpacker.take(w) for w in widths] == values


class TestBandwidthClasses:
    def test_examples_from_the_paper(self):
        # value = significand if e == 0 else (32+s) << (e-1)
        assert bwcls.decode(0) == 0
        assert bwcls.decode(31) == 31
        assert bwcls.decode(32) == 32  # e=1, s=0
        assert bwcls.decode(bwcls.MAX_CLASS) == 63 << 30

    def test_max_value_is_almost_2_36(self):
        assert bwcls.MAX_VALUE < 1 << 36
        assert bwcls.MAX_VALUE > 1 << 35

    def test_classes_are_monotone(self):
        values = bwcls.all_classes()
        assert values == sorted(values)
        assert len(values) == 1024

    @given(st.integers(min_value=0, max_value=bwcls.MAX_VALUE - 1))
    def test_floor_below_ceil_above(self, value):
        floor_value = bwcls.decode(bwcls.encode_floor(value))
        ceil_value = bwcls.decode(bwcls.encode_ceil(value))
        assert floor_value <= value <= ceil_value

    @given(st.integers(min_value=0, max_value=1 << 30))
    def test_floor_is_tight(self, value):
        cls = bwcls.encode_floor(value)
        if cls < bwcls.MAX_CLASS:
            assert bwcls.decode(cls + 1) > value

    def test_exact_values_roundtrip(self):
        for cls in range(0, 1024, 17):
            value = bwcls.decode(cls)
            assert bwcls.encode_floor(value) == cls
            assert bwcls.encode_ceil(value) == cls

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bwcls.encode_floor(-1)


class TestTimestamps:
    def test_allocator_unique_within_millisecond(self):
        allocator = TimestampAllocator(1000)
        seen = set()
        for _ in range(100):
            ts = allocator.allocate(1000.0005)
            key = (ts.base, ts.millis, ts.counter)
            assert key not in seen
            seen.add(key)

    def test_counter_resets_per_millisecond(self):
        allocator = TimestampAllocator(1000)
        allocator.allocate(1000.001)
        allocator.allocate(1000.001)
        ts = allocator.allocate(1000.002)
        assert ts.counter == 0

    def test_counter_exhaustion(self):
        allocator = TimestampAllocator(1000)
        for _ in range(1 << 16):
            allocator.allocate(1000.0)
        with pytest.raises(ValueError):
            allocator.allocate(1000.0)

    def test_before_base_rejected(self):
        with pytest.raises(ValueError):
            TimestampAllocator(1000).allocate(999.0)

    def test_millis_overflow_rejected(self):
        with pytest.raises(ValueError):
            TimestampAllocator(1000).allocate(1000.0 + 66.0)

    def test_absolute_seconds(self):
        ts = PacketTimestamp(base=100, millis=500, counter=3)
        assert ts.absolute_seconds() == pytest.approx(100.5)

    def test_field_bounds(self):
        with pytest.raises(ValueError):
            PacketTimestamp(base=1 << 32, millis=0, counter=0)
        with pytest.raises(ValueError):
            PacketTimestamp(base=0, millis=1 << 16, counter=0)
        with pytest.raises(ValueError):
            PacketTimestamp(base=0, millis=0, counter=1 << 16)
