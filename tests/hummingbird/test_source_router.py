"""Source generation and the Hummingbird border-router pipeline."""

import pytest

from tests.conftest import BLAKE2, T0, addresses, grant_full_path, walk_path

from repro.clock import SimClock
from repro.hummingbird.duplicate import DuplicateFilter
from repro.hummingbird.pathtype import is_flyover
from repro.hummingbird.reservation import ResInfo, grant_reservation
from repro.hummingbird.router import HummingbirdRouter
from repro.hummingbird.source import (
    HummingbirdSource,
    ReservationMismatch,
    match_reservations,
)
from repro.scion.router import Action
from repro.scion.paths import as_crossings
from repro.wire import bwcls


def routers_for(topology, clock, **kwargs):
    return {
        a.isd_as: HummingbirdRouter(a, clock, BLAKE2, **kwargs) for a in topology.ases
    }


class TestSource:
    def test_full_path_placements(self, chain3, clock):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"x" * 100)
        flyovers = [
            h for s in packet.path.segments for h in s.hopfields if is_flyover(h)
        ]
        assert len(flyovers) == 3

    def test_partial_path(self, chain5, clock):
        topology, path = chain5
        reservations = grant_full_path(topology, path, start=T0 - 5)[1:3]
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"x")
        flyovers = sum(
            1 for s in packet.path.segments for h in s.hopfields if is_flyover(h)
        )
        assert flyovers == 2

    def test_mismatched_reservation_rejected(self, chain3, clock):
        topology, path = chain3
        crossing = as_crossings(path)[0]
        wrong = grant_reservation(
            crossing.isd_as,
            topology.as_of(crossing.isd_as).secret_value,
            ResInfo(
                ingress=crossing.ingress + 5,
                egress=crossing.egress,
                res_id=0,
                bw_cls=1,
                start=T0,
                duration=60,
            ),
            BLAKE2,
        )
        with pytest.raises(ReservationMismatch):
            match_reservations(path, [wrong])

    def test_duplicate_reservation_for_same_crossing_rejected(self, chain3):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        with pytest.raises(ReservationMismatch):
            match_reservations(path, [reservations[0], reservations[0]])

    def test_future_reservation_rejected_at_source(self, chain3, clock):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 + 999)
        src, dst = addresses(path)
        with pytest.raises(ValueError):
            HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)

    def test_too_old_reservation_rejected_at_source(self, chain3):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0)
        late = SimClock(float(T0 + (1 << 16) + 10))
        src, dst = addresses(path)
        with pytest.raises(ValueError):
            HummingbirdSource(src, dst, path, reservations, late, BLAKE2)

    def test_unique_timestamps(self, chain3, clock):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        seen = set()
        for _ in range(50):
            packet = source.build_packet(b"x")
            key = (
                packet.path.base_timestamp,
                packet.path.millis_timestamp,
                packet.path.counter,
            )
            assert key not in seen
            seen.add(key)


class TestRouterPipeline:
    def test_full_priority_traversal(self, chain5, clock):
        topology, path = chain5
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        routers = routers_for(topology, clock)
        decisions = walk_path(topology, routers, source.build_packet(b"d" * 200), path.src)
        assert decisions[-1].action is Action.DELIVER
        assert all(d.action is Action.FORWARD_PRIORITY for d in decisions[:-1])
        assert all(r.stats.flyover_forwarded == 1 for r in routers.values())

    def test_partial_coverage_mixed_actions(self, chain5, clock):
        topology, path = chain5
        reservations = grant_full_path(topology, path, start=T0 - 5)[1:2]
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        routers = routers_for(topology, clock)
        decisions = walk_path(topology, routers, source.build_packet(b"d"), path.src)
        actions = [d.action for d in decisions]
        assert actions.count(Action.FORWARD_PRIORITY) == 1
        assert actions[-1] is Action.DELIVER

    def test_forged_tag_dropped(self, chain3, clock):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"x")
        hop = packet.path.segments[0].hopfields[0]
        hop.mac = bytes(b ^ 0xA5 for b in hop.mac)
        routers = routers_for(topology, clock)
        decision = routers[path.src].process(packet, 0)
        assert decision.action is Action.DROP

    def test_stale_packet_demoted(self, chain3, clock):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"x")
        clock.advance(10.0)  # > Delta + delta
        routers = routers_for(topology, clock)
        decision = routers[path.src].process(packet, 0)
        assert decision.action is Action.FORWARD
        assert routers[path.src].stats.demoted_stale == 1

    def test_expired_reservation_demoted(self, chain3):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 50, duration=60)
        clock = SimClock(float(T0 + 11))  # fresh packet, expired reservation
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        source_clock_now = clock.now()
        packet = source.build_packet(b"x")
        late = SimClock(source_clock_now)
        late.advance(0.1)
        router = HummingbirdRouter(topology.as_of(path.src), late, BLAKE2)
        # reservation expired at T0+10; packet is fresh at T0+11.1
        decision = router.process(packet, 0)
        assert decision.action is Action.FORWARD
        assert router.stats.demoted_inactive == 1

    def test_overuse_demoted_not_dropped(self, chain3, clock):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5, bandwidth_kbps=100)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        router = HummingbirdRouter(topology.as_of(path.src), clock, BLAKE2)
        # Wire size must stay below BurstTime * BW = 625 B (§4.4), so the
        # first packet is admitted and sustained sending demotes the rest.
        actions = [router.process(source.build_packet(b"y" * 300), 0).action for _ in range(20)]
        assert Action.FORWARD in actions  # demoted
        assert Action.FORWARD_PRIORITY in actions  # burst admitted
        assert Action.DROP not in actions
        assert router.stats.demoted_overuse > 0

    def test_duplicate_suppression_optional(self, chain3, clock):
        from copy import deepcopy

        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        router = HummingbirdRouter(
            topology.as_of(path.src), clock, BLAKE2, duplicate_filter=DuplicateFilter()
        )
        packet = source.build_packet(b"x")
        replay = deepcopy(packet)
        assert router.process(packet, 0).action is Action.FORWARD_PRIORITY
        assert router.process(replay, 0).action is Action.FORWARD
        assert router.stats.demoted_duplicate == 1

    def test_without_filter_duplicates_pass(self, chain3, clock):
        from copy import deepcopy

        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        router = HummingbirdRouter(topology.as_of(path.src), clock, BLAKE2)
        packet = source.build_packet(b"x")
        replay = deepcopy(packet)
        assert router.process(packet, 0).action is Action.FORWARD_PRIORITY
        assert router.process(replay, 0).action is Action.FORWARD_PRIORITY

    def test_boundary_flyover_spans_two_hopfields(self, clock):
        """A reservation at a segment-boundary AS authenticates correctly."""
        from repro.netsim.scenarios import SIM_PRF
        from repro.scion.beaconing import run_beaconing
        from repro.scion.paths import PathLookup
        from repro.scion.topology import core_mesh_topology

        topology = core_mesh_topology(2, 1)
        store = run_beaconing(topology, timestamp=T0, prf_factory=SIM_PRF)
        leaves = [a.isd_as for a in topology.ases if not a.is_core]
        path = PathLookup(store).find_paths(leaves[0], leaves[1])[0]
        reservations = grant_full_path(topology, path, start=T0 - 5, prf_factory=SIM_PRF)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, SIM_PRF)
        routers = {
            a.isd_as: HummingbirdRouter(a, clock, SIM_PRF) for a in topology.ases
        }
        decisions = walk_path(topology, routers, source.build_packet(b"x" * 50), path.src)
        assert decisions[-1].action is Action.DELIVER
        assert all(d.action is Action.FORWARD_PRIORITY for d in decisions[:-1])
        # Boundary crossings processed two hop fields but one reservation.
        assert len(decisions) == 4


class TestReversal:
    def test_reverse_and_traverse_back(self, chain3, clock):
        from repro.hummingbird.reversal import reverse_path
        from repro.scion.packet import PATH_TYPE_HUMMINGBIRD, ScionPacket

        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        routers = routers_for(topology, clock)
        packet = source.build_packet(b"ping")
        walk_path(topology, routers, packet, path.src)

        reversed_path = reverse_path(packet.path)
        assert reversed_path.flyover_count() == 0  # flyovers stripped
        reply = ScionPacket(
            src=dst,
            dst=src,
            path=reversed_path,
            payload=b"pong",
            path_type=PATH_TYPE_HUMMINGBIRD,
        )
        decisions = walk_path(topology, routers, reply, path.dst)
        assert decisions[-1].action is Action.DELIVER

    def test_reverse_requires_full_traversal(self, chain3, clock):
        from repro.hummingbird.reversal import reverse_path

        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"x")
        with pytest.raises(ValueError):
            reverse_path(packet.path)
