"""Traffic policing (Algorithm 1) and ResID interval colouring (§4.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hummingbird.policing import (
    PerInterfacePolicer,
    PolicingVerdict,
    TokenBucketArray,
    max_packet_size_for,
)
from repro.hummingbird.resid import (
    CapacityExhausted,
    FirstFitColoring,
    Interval,
    ResIdAllocator,
    policing_array_bytes,
)
from repro.wire import bwcls


class TestTokenBucket:
    def test_admits_traffic_within_rate(self):
        bucket = TokenBucketArray(capacity=8, burst_time=0.05)
        now = 1000.0
        # 1 Mbps reservation, 500 B packets every 4 ms = 1 Mbps exactly.
        for i in range(100):
            verdict = bucket.monitor(0, 1000, 500, now + i * 0.004)
            assert verdict is PolicingVerdict.FWD_FLYOVER

    def test_demotes_sustained_overuse(self):
        bucket = TokenBucketArray(capacity=8, burst_time=0.05)
        now = 1000.0
        verdicts = [bucket.monitor(0, 1000, 500, now) for _ in range(100)]
        assert PolicingVerdict.FWD_BEST_EFFORT in verdicts
        admitted = sum(1 for v in verdicts if v is PolicingVerdict.FWD_FLYOVER)
        # 50 ms burst at 1 Mbps = 6250 bytes = 12.5 packets of 500 B.
        assert 10 <= admitted <= 14

    def test_bucket_refills_over_time(self):
        bucket = TokenBucketArray(capacity=8, burst_time=0.05)
        for _ in range(50):
            bucket.monitor(0, 1000, 500, 1000.0)
        assert bucket.monitor(0, 1000, 500, 1001.0) is PolicingVerdict.FWD_FLYOVER

    def test_out_of_range_res_id_is_best_effort(self):
        bucket = TokenBucketArray(capacity=4)
        assert bucket.monitor(99, 1000, 500, 0.0) is PolicingVerdict.FWD_BEST_EFFORT

    def test_memory_is_8_bytes_per_res_id(self):
        assert TokenBucketArray(capacity=100_000).memory_bytes == 800_000  # §7.1

    @settings(max_examples=30)
    @given(
        bw_kbps=st.integers(min_value=100, max_value=1_000_000),
        pkt_len=st.integers(min_value=64, max_value=1500),
        gaps_ms=st.lists(st.integers(0, 20), min_size=20, max_size=60),
    )
    def test_admitted_bytes_never_exceed_rate_plus_burst(self, bw_kbps, pkt_len, gaps_ms):
        """The policing invariant: admitted <= BW * elapsed + BW * BurstTime."""
        burst_time = 0.05
        bucket = TokenBucketArray(capacity=4, burst_time=burst_time)
        now = 1_000.0
        admitted_bytes = 0
        start = now
        for gap in gaps_ms:
            now += gap / 1000.0
            if bucket.monitor(1, bw_kbps, pkt_len, now) is PolicingVerdict.FWD_FLYOVER:
                admitted_bytes += pkt_len
        elapsed = now - start
        budget = bw_kbps * 1000 / 8 * (elapsed + burst_time) + pkt_len
        assert admitted_bytes <= budget

    def test_max_packet_size_examples(self):
        # §4.4: below ~240 kbps the 50 ms burst admits less than 1500 B.
        assert max_packet_size_for(240) == 1500
        assert max_packet_size_for(100) < 1500
        assert max_packet_size_for(4000) > 1500


class TestPerInterfacePolicer:
    def test_arrays_are_lazy_per_interface(self):
        policer = PerInterfacePolicer(capacity=16)
        policer.monitor(1, 0, bwcls.encode_ceil(1000), 500, 0.0)
        policer.monitor(2, 0, bwcls.encode_ceil(1000), 500, 0.0)
        assert policer.memory_bytes == 2 * 16 * 8

    def test_same_res_id_different_interfaces_independent(self):
        policer = PerInterfacePolicer(capacity=16)
        cls = bwcls.encode_ceil(1000)
        for _ in range(50):
            policer.monitor(1, 0, cls, 500, 0.0)
        # Interface 1's bucket for ResID 0 is exhausted; interface 2's is not.
        assert policer.monitor(2, 0, cls, 500, 0.0) is PolicingVerdict.FWD_FLYOVER


class TestFirstFit:
    def test_non_overlapping_reuse_color(self):
        coloring = FirstFitColoring()
        assert coloring.assign(Interval(0, 10)) == 0
        assert coloring.assign(Interval(10, 20)) == 0
        assert coloring.assign(Interval(5, 15)) == 1

    def test_release_frees_color(self):
        coloring = FirstFitColoring()
        color = coloring.assign(Interval(0, 10))
        coloring.release(color, Interval(0, 10))
        assert coloring.assign(Interval(5, 8)) == color

    def test_release_unknown_interval(self):
        coloring = FirstFitColoring()
        coloring.assign(Interval(0, 10))
        with pytest.raises(KeyError):
            coloring.release(0, Interval(1, 2))

    @settings(max_examples=30)
    @given(
        st.lists(
            st.tuples(st.integers(0, 500), st.integers(1, 100)),
            min_size=1,
            max_size=60,
        )
    )
    def test_coloring_is_always_valid(self, raw_intervals):
        """No two overlapping intervals ever share a colour (= ResID)."""
        coloring = FirstFitColoring()
        assigned: list[tuple[Interval, int]] = []
        for start, length in raw_intervals:
            interval = Interval(start, start + length)
            color = coloring.assign(interval)
            for other, other_color in assigned:
                if interval.overlaps(other):
                    assert color != other_color
            assigned.append((interval, color))

    @settings(max_examples=20)
    @given(
        st.lists(
            st.tuples(st.integers(0, 300), st.integers(1, 50)),
            min_size=5,
            max_size=50,
        )
    )
    def test_first_fit_competitiveness_bound(self, raw_intervals):
        """Colours used stay within the known First-Fit bound (~8x optimal)."""
        coloring = FirstFitColoring()
        intervals = [Interval(s, s + l) for s, l in raw_intervals]
        for interval in intervals:
            coloring.assign(interval)
        # Optimal = max clique = max overlap depth.
        events = sorted(
            [(i.start, 1) for i in intervals] + [(i.end, -1) for i in intervals]
        )
        depth = max_depth = 0
        for _, delta in events:
            depth += delta
            max_depth = max(max_depth, depth)
        assert coloring.colors_in_use <= 8 * max_depth


class TestResIdAllocator:
    def test_capacity_enforced(self):
        allocator = ResIdAllocator(capacity=2)
        allocator.allocate(0, 10)
        allocator.allocate(0, 10)
        with pytest.raises(CapacityExhausted):
            allocator.allocate(0, 10)

    def test_release_enables_reuse(self):
        allocator = ResIdAllocator(capacity=1)
        res_id = allocator.allocate(0, 10)
        allocator.release(res_id, 0, 10)
        assert allocator.allocate(2, 12) == res_id

    def test_paper_sizing_examples(self):
        # §4.4 example 1: 100 Gbps / 100 kbps -> 3e6 ResIDs, 24 MB array.
        assert policing_array_bytes(100_000_000, 100) == 24_000_000
        # Example 2: 100 Gbps / 4 Mbps -> 75 000 ResIDs, 600 kB array.
        assert policing_array_bytes(100_000_000, 4_000) == 600_000


class TestResIdExhaustionAndReuse:
    """Capacity-exhaustion behaviour the admission subsystem now leans on."""

    def test_failed_allocation_leaves_allocator_usable(self):
        allocator = ResIdAllocator(capacity=2)
        allocator.allocate(0, 10)
        allocator.allocate(0, 10)
        with pytest.raises(CapacityExhausted):
            allocator.allocate(5, 15)
        # The rejected interval was rolled back completely: no phantom
        # colour track, no bumped high-water mark.
        assert allocator._coloring.colors_in_use == 2
        assert allocator.max_res_id <= 1
        # A non-overlapping window still allocates, within capacity.
        assert allocator.allocate(10, 20) in (0, 1)

    def test_release_after_exhaustion_reopens_capacity(self):
        allocator = ResIdAllocator(capacity=2)
        first = allocator.allocate(0, 10)
        allocator.allocate(0, 10)
        with pytest.raises(CapacityExhausted):
            allocator.allocate(0, 10)
        allocator.release(first, 0, 10)
        assert allocator.allocate(0, 10) == first

    def test_released_id_reused_lowest_first(self):
        allocator = ResIdAllocator(capacity=8)
        ids = [allocator.allocate(0, 10) for _ in range(4)]
        assert ids == [0, 1, 2, 3]
        allocator.release(1, 0, 10)
        allocator.release(2, 0, 10)
        # First-Fit hands back the lowest free colour first.
        assert allocator.allocate(0, 10) == 1
        assert allocator.allocate(0, 10) == 2

    def test_release_requires_exact_interval(self):
        allocator = ResIdAllocator(capacity=2)
        res_id = allocator.allocate(0, 10)
        with pytest.raises(KeyError):
            allocator.release(res_id, 0, 11)
        # The reservation is still held: a full-capacity burst exhausts.
        allocator.allocate(0, 10)
        with pytest.raises(CapacityExhausted):
            allocator.allocate(0, 10)

    def test_max_res_id_tracks_high_water_mark(self):
        allocator = ResIdAllocator(capacity=4)
        assert allocator.max_res_id == -1
        for expected in range(3):
            allocator.allocate(0, 10)
            assert allocator.max_res_id == expected
        allocator.release(2, 0, 10)
        # High-water mark is monotone even after release.
        assert allocator.max_res_id == 2

    def test_sequential_windows_never_exhaust_capacity_one(self):
        allocator = ResIdAllocator(capacity=1)
        for window in range(50):
            res_id = allocator.allocate(window * 10, window * 10 + 10)
            assert res_id == 0
            allocator.release(res_id, window * 10, window * 10 + 10)
