"""Gateway aggregation (§5.4): admission control and conformant output."""

import pytest

from tests.conftest import BLAKE2, T0, addresses, grant_full_path, walk_path

from repro.hummingbird.gateway import AdmissionError, HummingbirdGateway
from repro.hummingbird.router import HummingbirdRouter
from repro.scion.addresses import HostAddr, ScionAddr
from repro.scion.router import Action


@pytest.fixture
def gateway(chain3, clock):
    topology, path = chain3
    reservations = grant_full_path(
        topology, path, start=T0 - 5, bandwidth_kbps=10_000
    )
    src, dst = addresses(path)
    return (
        HummingbirdGateway(src, dst, path, reservations, clock, BLAKE2),
        topology,
        path,
        clock,
    )


def host(n):
    return ScionAddr.__new__(ScionAddr)  # placeholder; gateway only records it


class TestAdmission:
    def test_admits_within_aggregate(self, gateway):
        gw, *_ = gateway
        # The 10 Mbps grant rounds up to the next bandwidth class (10240).
        aggregate = gw.aggregate_kbps
        flow = gw.admit(None, 4_000)
        assert flow.rate_kbps == 4_000
        assert gw.available_kbps == aggregate - 4_000

    def test_rejects_oversubscription(self, gateway):
        gw, *_ = gateway
        gw.admit(None, 6_000)
        gw.admit(None, gw.available_kbps)
        with pytest.raises(AdmissionError):
            gw.admit(None, 1_000)
        assert gw.stats.rejected_flows == 1

    def test_release_frees_capacity(self, gateway):
        gw, *_ = gateway
        aggregate = gw.aggregate_kbps
        flow = gw.admit(None, 8_000)
        gw.release(flow.flow_id)
        assert gw.available_kbps == aggregate
        gw.admit(None, aggregate)  # now fits exactly

    def test_invalid_rate_rejected(self, gateway):
        gw, *_ = gateway
        with pytest.raises(ValueError):
            gw.admit(None, 0)


class TestConformance:
    def test_gateway_traffic_never_demoted_in_network(self, gateway):
        """Locally policed aggregate passes every on-path policer."""
        gw, topology, path, clock = gateway
        flow = gw.admit(None, 5_000)
        routers = {
            a.isd_as: HummingbirdRouter(a, clock, BLAKE2) for a in topology.ases
        }
        sent = 0
        for _ in range(100):
            packet = gw.send(flow.flow_id, b"x" * 300)
            clock.advance(0.001)
            if packet is None:
                continue  # locally demoted; never reaches the network
            sent += 1
            decisions = walk_path(topology, routers, packet, path.src)
            assert decisions[-1].action is Action.DELIVER
            assert all(
                d.action is Action.FORWARD_PRIORITY for d in decisions[:-1]
            ), "gateway output must always be conformant"
        assert sent > 0
        # The flow exceeded its committed 5 Mbps (300B/ms ~ 2.6 Mbps wire ->
        # actually conformant; check stats consistency instead).
        assert gw.stats.sent_packets == sent

    def test_over_rate_flow_demoted_locally(self, gateway):
        gw, _, _, clock = gateway
        flow = gw.admit(None, 500)  # 0.5 Mbps commitment
        demoted = 0
        for _ in range(50):  # ~450B wire back to back >> 0.5 Mbps
            if gw.send(flow.flow_id, b"y" * 300) is None:
                demoted += 1
        assert demoted > 0
        assert gw.stats.locally_demoted == demoted

    def test_unknown_flow_rejected(self, gateway):
        gw, *_ = gateway
        with pytest.raises(KeyError):
            gw.send(99, b"z")
