"""Codec robustness: arbitrary and mutated wire input must fail *cleanly*.

A border router parses attacker-controlled bytes; the codecs must either
produce a packet or raise ``ValueError`` — never an IndexError/KeyError/
OverflowError that could crash a router process.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import BLAKE2, T0, addresses, grant_full_path

from repro.clock import SimClock
from repro.hummingbird.pathtype import decode_hummingbird_path
from repro.hummingbird.source import HummingbirdSource
from repro.scion.packet import decode_packet, encode_packet


@settings(max_examples=150)
@given(st.binary(max_size=64))
def test_hummingbird_path_decoder_never_crashes(data):
    try:
        decode_hummingbird_path(data)
    except ValueError:
        pass  # rejecting malformed input is the correct behaviour


@settings(max_examples=150)
@given(st.binary(max_size=200))
def test_packet_decoder_never_crashes(data):
    try:
        decode_packet(data)
    except ValueError:
        pass


def _reference_wire() -> bytes:
    from repro.netsim.scenarios import linear_path

    topology, path = linear_path(3, timestamp=T0, prf_factory=BLAKE2)
    clock = SimClock(float(T0))
    src, dst = addresses(path)
    reservations = grant_full_path(topology, path, start=T0 - 5)
    source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
    return encode_packet(source.build_packet(b"payload" * 8))


WIRE = _reference_wire()


class TestMutationFuzz:
    @pytest.fixture
    def wire(self):
        return WIRE

    @settings(max_examples=120, deadline=None)
    @given(position=st.integers(0, 150), value=st.integers(0, 255))
    def test_single_byte_mutations(self, position, value):
        wire = WIRE
        mutated = bytearray(wire)
        mutated[position % len(mutated)] = value
        try:
            packet = decode_packet(bytes(mutated))
        except ValueError:
            return
        # If it parses, re-encoding must not crash either (it may differ:
        # the mutation might have hit the payload or a MAC byte).
        try:
            encode_packet(packet)
        except ValueError:
            pass

    @settings(max_examples=60, deadline=None)
    @given(cut=st.integers(1, 100))
    def test_truncations_rejected(self, cut):
        wire = WIRE
        truncated = wire[: len(wire) - cut]
        try:
            packet = decode_packet(truncated)
        except ValueError:
            return
        # Only acceptable parse: the cut removed exactly trailing payload
        # bytes and the PayloadLen happened to still match (impossible
        # here because PayloadLen is fixed) — so reaching this is a bug.
        pytest.fail(f"truncated packet of {len(truncated)} bytes parsed: {packet}")

    def test_roundtrip_is_stable(self, wire):
        packet = decode_packet(wire)
        assert encode_packet(packet) == wire
