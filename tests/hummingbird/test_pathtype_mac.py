"""Hummingbird path type (byte-exact) and MAC computations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import BLAKE2, T0, addresses, grant_full_path

from repro.clock import SimClock
from repro.hummingbird.mac import (
    TAG_LEN,
    aggregate_mac,
    checked_pkt_len,
    compute_flyover_mac,
    pack_flyover_mac_input,
)
from repro.hummingbird.pathtype import (
    FLYOVER_HOPFIELD_LEN,
    HOPFIELD_LEN,
    INFO_FIELD_LEN,
    META_HDR_LEN,
    FlyoverHopFieldData,
    HummingbirdPath,
    decode_hummingbird_path,
    encode_hummingbird_path,
    hummingbird_path_size,
    is_flyover,
)
from repro.hummingbird.source import HummingbirdSource
from repro.scion.addresses import IsdAs
from repro.scion.packet import encode_packet, decode_packet
from repro.scion.paths import HopFieldData, SegmentInPath


class TestMacComputation:
    def test_input_is_one_aes_block(self):
        block = pack_flyover_mac_input(IsdAs(1, 2), 1000, 30, 500, 7)
        assert len(block) == 16

    def test_input_layout(self):
        block = pack_flyover_mac_input(IsdAs(0x0102, 0x030405060708), 0x1112, 0x2122, 0x3132, 0x4142)
        assert block[:2] == bytes.fromhex("0102")
        assert block[2:8] == bytes.fromhex("030405060708")
        assert block[8:10] == bytes.fromhex("1112")
        assert block[10:12] == bytes.fromhex("2122")
        assert block[12:14] == bytes.fromhex("3132")
        assert block[14:16] == bytes.fromhex("4142")

    def test_tag_is_truncated_to_6_bytes(self):
        tag = compute_flyover_mac(bytes(16), IsdAs(1, 2), 100, 0, 0, 0, BLAKE2)
        assert len(tag) == TAG_LEN == 6

    def test_tag_binds_every_field(self):
        base = compute_flyover_mac(bytes(16), IsdAs(1, 2), 100, 5, 6, 7, BLAKE2)
        assert compute_flyover_mac(bytes(16), IsdAs(1, 3), 100, 5, 6, 7, BLAKE2) != base
        assert compute_flyover_mac(bytes(16), IsdAs(1, 2), 101, 5, 6, 7, BLAKE2) != base
        assert compute_flyover_mac(bytes(16), IsdAs(1, 2), 100, 6, 6, 7, BLAKE2) != base
        assert compute_flyover_mac(bytes(16), IsdAs(1, 2), 100, 5, 7, 7, BLAKE2) != base
        assert compute_flyover_mac(bytes(16), IsdAs(1, 2), 100, 5, 6, 8, BLAKE2) != base

    def test_aggregate_is_self_inverse(self):
        a, b = bytes(range(6)), bytes(range(6, 12))
        assert aggregate_mac(aggregate_mac(a, b), b) == a

    def test_aggregate_requires_6_bytes(self):
        with pytest.raises(ValueError):
            aggregate_mac(bytes(5), bytes(6))

    def test_pkt_len_overflow(self):
        with pytest.raises(OverflowError):
            checked_pkt_len(65_000, 200)
        assert checked_pkt_len(100, 25) == 200


class TestHeaderSizes:
    def test_constants_match_appendix_a(self):
        assert META_HDR_LEN == 12
        assert INFO_FIELD_LEN == 8
        assert HOPFIELD_LEN == 12
        assert FLYOVER_HOPFIELD_LEN == 20

    def test_flyover_adds_8_bytes_per_hop(self, chain3):
        topology, path = chain3
        clock = SimClock(float(T0))
        src, dst = addresses(path)
        reservations = grant_full_path(topology, path, start=T0 - 5)
        with_fly = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        without = HummingbirdSource(src, dst, path, [], clock, BLAKE2)
        assert with_fly.header_bytes() - without.header_bytes() == 8 * 3


def _hop_strategy():
    plain = st.builds(
        HopFieldData,
        cons_ingress=st.integers(0, (1 << 16) - 1),
        cons_egress=st.integers(0, (1 << 16) - 1),
        exp_time=st.integers(0, 255),
        mac=st.binary(min_size=6, max_size=6),
    )
    flyover = st.builds(
        FlyoverHopFieldData,
        cons_ingress=st.integers(0, (1 << 16) - 1),
        cons_egress=st.integers(0, (1 << 16) - 1),
        exp_time=st.integers(0, 255),
        mac=st.binary(min_size=6, max_size=6),
        res_id=st.integers(0, (1 << 22) - 1),
        bw_cls=st.integers(0, 1023),
        res_start_offset=st.integers(0, (1 << 16) - 1),
        res_duration=st.integers(0, (1 << 16) - 1),
    )
    return st.one_of(plain, flyover)


class TestCodecRoundTrip:
    @settings(max_examples=40)
    @given(
        st.lists(
            st.lists(_hop_strategy(), min_size=1, max_size=4),
            min_size=1,
            max_size=3,
        ),
        st.booleans(),
    )
    def test_roundtrip_property(self, segment_hops, cons_dir):
        segments = [
            SegmentInPath(
                cons_dir=cons_dir,
                timestamp=T0,
                initial_segid=0x1234,
                hopfields=hops,
                ases=[],
            )
            for hops in segment_hops
        ]
        path = HummingbirdPath(
            segments=segments,
            base_timestamp=T0,
            millis_timestamp=777,
            counter=3,
        )
        wire = encode_hummingbird_path(path)
        assert len(wire) == hummingbird_path_size(path)
        decoded = decode_hummingbird_path(wire)
        assert decoded.base_timestamp == T0
        assert decoded.millis_timestamp == 777
        assert decoded.counter == 3
        flat_in = [h for s in path.segments for h in s.hopfields]
        flat_out = [h for s in decoded.segments for h in s.hopfields]
        assert len(flat_in) == len(flat_out)
        for original, round_tripped in zip(flat_in, flat_out):
            assert is_flyover(original) == is_flyover(round_tripped)
            assert original.mac == round_tripped.mac
            assert original.cons_ingress == round_tripped.cons_ingress
            if is_flyover(original):
                assert original.res_id == round_tripped.res_id
                assert original.bw_cls == round_tripped.bw_cls
                assert original.res_start_offset == round_tripped.res_start_offset
                assert original.res_duration == round_tripped.res_duration

    def test_curr_hf_units_encoding(self):
        plain = HopFieldData(1, 2, 63, bytes(6))
        fly = FlyoverHopFieldData(1, 2, 63, bytes(6), 5, 10, 0, 60)
        path = HummingbirdPath(
            segments=[
                SegmentInPath(True, T0, 0, [fly.copy(), plain.copy(), fly.copy()], [])
            ],
            base_timestamp=T0,
        )
        path.curr_hf = 0
        assert path.curr_hf_units() == 0
        path.curr_hf = 1
        assert path.curr_hf_units() == 5  # flyover advances by 5
        path.curr_hf = 2
        assert path.curr_hf_units() == 8  # plain advances by 3
        decoded = decode_hummingbird_path(encode_hummingbird_path(path))
        assert decoded.curr_hf == 2

    def test_full_packet_roundtrip_with_flyovers(self, chain3):
        topology, path = chain3
        clock = SimClock(float(T0))
        src, dst = addresses(path)
        reservations = grant_full_path(topology, path, start=T0 - 5)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"payload" * 10)
        decoded = decode_packet(encode_packet(packet))
        assert decoded.payload == packet.payload
        assert isinstance(decoded.path, HummingbirdPath)
        assert decoded.path.flyover_count() == 3
        assert decoded.path.base_timestamp == packet.path.base_timestamp
