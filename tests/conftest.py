"""Shared fixtures: clocks, topologies, paths, reservations, deployments."""

from __future__ import annotations

import pytest

from repro.clock import SimClock
from repro.crypto.prf import PrfFactory
from repro.hummingbird.reservation import ResInfo, grant_reservation
from repro.netsim.scenarios import linear_path
from repro.scion.addresses import HostAddr, ScionAddr
from repro.scion.paths import as_crossings
from repro.wire import bwcls

BLAKE2 = PrfFactory("blake2")
T0 = 1_700_000_000


@pytest.fixture
def clock():
    return SimClock(float(T0))


@pytest.fixture
def chain3():
    """(topology, path) for a 3-AS chain, BLAKE2 MACs."""
    return linear_path(3, timestamp=T0, prf_factory=BLAKE2)


@pytest.fixture
def chain5():
    return linear_path(5, timestamp=T0, prf_factory=BLAKE2)


def grant_full_path(
    topology,
    path,
    start: int,
    duration: int = 3600,
    bandwidth_kbps: int = 10_000,
    prf_factory: PrfFactory = BLAKE2,
    res_id_base: int = 0,
):
    """Grant a reservation at every AS crossing of ``path``."""
    reservations = []
    for index, crossing in enumerate(as_crossings(path)):
        resinfo = ResInfo(
            ingress=crossing.ingress,
            egress=crossing.egress,
            res_id=res_id_base + index,
            bw_cls=bwcls.encode_ceil(bandwidth_kbps),
            start=start,
            duration=duration,
        )
        reservations.append(
            grant_reservation(
                crossing.isd_as,
                topology.as_of(crossing.isd_as).secret_value,
                resinfo,
                prf_factory,
            )
        )
    return reservations


def addresses(path):
    return (
        ScionAddr(path.src, HostAddr.from_string("10.0.0.1")),
        ScionAddr(path.dst, HostAddr.from_string("10.0.0.2")),
    )


def walk_path(topology, routers, packet, start_as, max_hops: int = 32):
    """Drive a packet through per-AS routers; returns the decision list."""
    from repro.scion.router import Action

    decisions = []
    current, ingress = start_as, 0
    for _ in range(max_hops):
        decision = routers[current].process(packet, ingress)
        decisions.append(decision)
        if decision.action in (Action.DELIVER, Action.DROP):
            return decisions
        interface = topology.as_of(current).interfaces[decision.egress_ifid]
        current, ingress = interface.neighbor, interface.neighbor_ifid
    raise AssertionError("packet did not terminate")


@pytest.fixture(scope="session")
def deployment3():
    """A session-scoped market deployment over a 3-AS chain (AES keys)."""
    from repro.controlplane import deploy_market
    from repro.scion.topology import linear_topology

    clock = SimClock(float(T0))
    topology = linear_topology(3)
    return deploy_market(topology, clock=clock)
