"""Throughput model: the shape checks behind Figures 5, 14 and 15."""

import pytest

from repro.perfmodel import papertimings as paper
from repro.perfmodel.measure import measure_router, measure_source
from repro.perfmodel.scaling import (
    ThroughputModel,
    fig14_generation_series,
    fig15_singlecore_series,
    fig5_forwarding_series,
    wire_bytes,
)


class TestPaperTimings:
    def test_table3_totals(self):
        assert paper.SCION_FORWARD_NS == 123
        assert paper.HUMMINGBIRD_EXTRA_NS == 185
        assert paper.HUMMINGBIRD_FORWARD_NS == 308

    def test_table4_totals(self):
        # 107 + 201 + 171 + 15 = 494 (500 B), +25 -> 519 (1500 B)
        assert paper.hummingbird_generation_ns(4, 500) == pytest.approx(494)
        assert paper.hummingbird_generation_ns(4, 1500) == pytest.approx(519)
        assert paper.scion_generation_ns(4, 500) == pytest.approx(293)


class TestWireBytes:
    def test_hummingbird_overhead_is_8_bytes_per_reserved_hop(self):
        for hops in (1, 4, 16):
            hb = wire_bytes(hops, 500, hummingbird=True)
            scion = wire_bytes(hops, 500, hummingbird=False)
            assert hb - scion == 8 * hops + 8  # + meta-header extension

    def test_partial_flyovers(self):
        full = wire_bytes(4, 500, True)
        partial = wire_bytes(4, 500, True, flyover_hops=2)
        assert full - partial == 2 * 8


class TestFigure5Shape:
    def test_line_rate_with_4_cores_at_1500B(self):
        model = ThroughputModel(paper.HUMMINGBIRD_FORWARD_NS)
        packet = wire_bytes(4, 1500, True)
        assert model.throughput_gbps(4, packet) == pytest.approx(160.0)
        assert model.throughput_gbps(2, packet) < 160.0

    def test_100B_needs_about_32_cores(self):
        model = ThroughputModel(paper.HUMMINGBIRD_FORWARD_NS)
        packet = wire_bytes(4, 100, True)
        cores = model.cores_for_line_rate(packet)
        assert 24 <= cores <= 40

    def test_scion_dominates_hummingbird_below_saturation(self):
        series = fig5_forwarding_series()
        for payload in (100, 500):
            for (hb_cores, hb), (sc_cores, sc) in zip(
                series[("hummingbird", payload)], series[("scion", payload)]
            ):
                assert hb_cores == sc_cores
                assert sc >= hb * 0.99  # SCION never slower

    def test_throughput_monotone_in_cores_until_cap(self):
        series = fig5_forwarding_series()
        for values in series.values():
            gbps = [v for _, v in values]
            assert all(b >= a for a, b in zip(gbps, gbps[1:]))
            assert max(gbps) <= 160.0


class TestFigure14And15Shape:
    def test_fewer_hops_generate_faster(self):
        series = fig15_singlecore_series()
        at_500 = {
            hops: dict(series[("hummingbird", hops)])[500] for hops in (1, 4, 16)
        }
        assert at_500[1] > at_500[4] > at_500[16]

    def test_paper_datapoint_h4_1kB(self):
        """§B.3: h=4, 1 kB payload -> 17.90 (HB) vs 28.64 (SCION) Gbps."""
        series = fig15_singlecore_series(payloads=(1000,))
        hb = dict(series[("hummingbird", 4)])[1000]
        scion = dict(series[("scion", 4)])[1000]
        assert hb == pytest.approx(17.9, rel=0.10)
        assert scion == pytest.approx(28.6, rel=0.10)

    def test_paper_datapoint_h4_100B(self):
        """§B.3: 100 B payloads -> 4.65 vs 7.70 Gbps.

        The model is within ~20 % here: for tiny packets the testbed's
        per-packet wire overhead (L1 framing, which we do not model) is a
        large fraction of the packet.  At 1000 B (previous test) the model
        matches to ~1 %.
        """
        series = fig15_singlecore_series(payloads=(100,))
        assert dict(series[("hummingbird", 4)])[100] == pytest.approx(4.65, rel=0.25)
        assert dict(series[("scion", 4)])[100] == pytest.approx(7.70, rel=0.35)

    def test_32_cores_reach_line_rate_at_500B(self):
        """Fig. 14: 32 cores deliver 160 Gbps for 500 B payloads."""
        series = fig14_generation_series()
        for hops in (1, 2, 4, 8):
            curve = dict(series[("hummingbird", hops)])
            assert curve[32] == pytest.approx(160.0)


class TestMeasurements:
    def test_router_measurement_structure(self):
        measured = measure_router(packets=200, prf_backend="blake2")
        assert measured.hummingbird_process_ns > measured.scion_process_ns
        assert measured.hummingbird_overhead_ns > 0
        assert set(measured.steps) >= {
            "Recompute SCION hop field MAC",
            "Compute authentication key (A_i)",
            "Check for overuse",
        }

    def test_source_measurement_scales_with_hops(self):
        fast = measure_source(hops=2, iterations=150, prf_backend="blake2")
        slow = measure_source(hops=6, iterations=150, prf_backend="blake2")
        assert slow.hummingbird_generation_ns > fast.hummingbird_generation_ns

    def test_hummingbird_generation_costs_more_than_scion(self):
        measured = measure_source(hops=4, iterations=150, prf_backend="blake2")
        assert measured.hummingbird_generation_ns > measured.scion_generation_ns
