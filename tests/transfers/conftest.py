"""Builders for synthetic transfer books and randomized instances."""

from __future__ import annotations

import random
from types import SimpleNamespace

from repro.transfers import (
    BYTES_PER_KBPS_SECOND,
    MAX_REDEEM_SECONDS,
    BookListing,
    DeadlineTransfer,
    TransferBook,
)

T0 = 1_700_000_000


def make_crossing(hop: int = 0):
    return SimpleNamespace(isd_as=f"1-{hop}", ingress=1, egress=2)


def make_listing(
    lid: str,
    price: int,
    start: int,
    expiry: int,
    bandwidth_kbps: int = 1000,
    granularity: int = 60,
    min_bandwidth_kbps: int = 100,
) -> BookListing:
    return BookListing(
        listing_id=lid,
        unit_price=price,
        bandwidth_kbps=bandwidth_kbps,
        min_bandwidth_kbps=min_bandwidth_kbps,
        start=start,
        expiry=expiry,
        granularity=granularity,
    )


def make_book(directions: dict, release: int, deadline: int) -> TransferBook:
    """Book over explicit per-direction listing lists.

    ``directions`` maps ``(hop, is_ingress)`` to listings; crossings are
    synthesized for every hop index present.
    """
    hops = sorted({hop for hop, _ in directions})
    return TransferBook(
        [make_crossing(hop) for hop in hops], release, deadline, directions
    )


def random_instance(rng: random.Random, hops: int = 1):
    """One random solvable-scale instance: ``(book, transfer)``.

    Every direction gets one base listing spanning the whole window
    (books are never trivially empty) plus up to two extras with random
    granularity in {30, 60, 120}, granule-aligned windows, and random
    prices/bandwidths — anchors all congruent to T0, so lattices always
    fold.  Instances stay small enough for the exact oracle.
    """
    horizon = rng.choice([240, 360, 480, 600])
    release = T0
    deadline = T0 + horizon
    directions: dict = {}
    serial = 0
    for hop in range(hops):
        for is_ingress in (True, False):
            base_bw = rng.choice([800, 1000, 2000])
            listings = [
                make_listing(
                    f"b{serial}",
                    rng.choice([40, 50, 80]),
                    release,
                    deadline,
                    bandwidth_kbps=base_bw,
                    granularity=rng.choice([30, 60]),
                )
            ]
            serial += 1
            for _ in range(rng.randrange(0, 3)):
                g = rng.choice([30, 60, 120])
                start = release + rng.randrange(0, horizon // g) * g
                span = rng.randrange(1, max(2, (deadline - start) // g)) * g
                listings.append(
                    make_listing(
                        f"x{serial}",
                        rng.choice([10, 20, 30, 100]),
                        start,
                        start + span,
                        bandwidth_kbps=rng.choice([500, 1000, 3000]),
                        granularity=g,
                    )
                )
                serial += 1
            directions[(hop, is_ingress)] = listings
    book = make_book(directions, release, deadline)
    # Target between "easy" and "impossible" relative to the thinnest
    # base listing, so the mix covers feasible and infeasible cases.
    min_base_bw = min(
        listings[0].bandwidth_kbps for listings in directions.values()
    )
    capacity = min_base_bw * horizon * BYTES_PER_KBPS_SECOND
    bytes_total = max(1, int(capacity * rng.uniform(0.2, 1.4)))
    budget = None
    if rng.random() < 0.4:
        budget = int(capacity * 60 * rng.uniform(0.00001, 0.0002))
    max_rate = None
    if rng.random() < 0.3:
        max_rate = rng.choice([500, 900, 2000])
    transfer = DeadlineTransfer(
        crossings=tuple(make_crossing(hop) for hop in range(hops)),
        bytes_total=bytes_total,
        release=release,
        deadline=deadline,
        budget_mist=budget,
        max_rate_kbps=max_rate,
    )
    return book, transfer


def check_plan_wellformed(book: TransferBook, plan) -> None:
    """Structural invariants every plan must satisfy against its book."""
    transfer = plan.transfer
    step = book.lattice.step
    legs = sorted(plan.legs, key=lambda leg: leg.start)
    for earlier, later in zip(legs, legs[1:]):
        assert earlier.expiry <= later.start, "legs overlap in time"
    total_scheduled = 0
    for leg in legs:
        assert leg.expiry - leg.start <= MAX_REDEEM_SECONDS
        assert (leg.start - book.lattice.anchor) % step == 0
        assert (leg.expiry - book.lattice.anchor) % step == 0
        assert leg.effective_start == max(leg.start, transfer.release)
        assert leg.effective_expiry == min(leg.expiry, transfer.deadline)
        assert 0 < leg.bytes_scheduled <= leg.bytes_capacity
        if transfer.max_rate_kbps is not None:
            assert leg.rate_kbps <= transfer.max_rate_kbps
        total_scheduled += leg.bytes_scheduled
        assert len(leg.hops) == len(transfer.crossings)
        for hop_index, hop in enumerate(leg.hops):
            for pieces in (hop.ingress_pieces, hop.egress_pieces):
                assert pieces, "a direction of a leg has no purchase"
                assert pieces[0].start == leg.start
                assert pieces[-1].expiry == leg.expiry
                for left, right in zip(pieces, pieces[1:]):
                    assert left.expiry == right.start, "pieces not adjacent"
                for piece in pieces:
                    listing = book.by_id[piece.listing_id]
                    assert listing.covers(piece.start, piece.expiry)
                    assert listing.sellable(leg.rate_kbps)
                    assert (piece.start - listing.start) % listing.granularity == 0
                    assert (piece.expiry - listing.start) % listing.granularity == 0
                    assert piece.price_mist == listing.price_for(
                        leg.rate_kbps, piece.start, piece.expiry
                    )
    assert total_scheduled == plan.bytes_scheduled
    assert plan.spend_mist == sum(leg.price_mist for leg in plan.legs)
    if transfer.budget_mist is not None:
        assert plan.spend_mist <= transfer.budget_mist
