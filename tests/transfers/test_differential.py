"""Differential harness: planner vs the exact offline oracle.

The load-bearing guarantees:

* **feasibility match** — the planner succeeds exactly when the oracle
  says a schedule meeting the request exists (the planner falls back to
  the same exact search before declaring infeasibility);
* **best-effort parity** — when both fall short, the planner's
  best-effort plan carries exactly the oracle's maximum byte count;
* **greedy quality** — with the exact fallback disabled, the pure
  density-greedy heuristic still moves >= 90% of the oracle's bytes in
  aggregate over a fixed randomized workload.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfers import InfeasibleTransfer, TransferPlanner
from repro.transfers.oracle import offline_optimum

from tests.transfers.conftest import check_plan_wellformed, random_instance

planner = TransferPlanner(indexer=None)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_planner_feasibility_matches_oracle(seed):
    rng = random.Random(seed)
    book, transfer = random_instance(rng, hops=rng.choice([1, 1, 2]))
    oracle = offline_optimum(book, transfer)
    try:
        plan = planner.plan_on_book(book, transfer)
    except InfeasibleTransfer as exc:
        assert not oracle.feasible, (
            "planner declared infeasible a transfer the oracle can "
            f"schedule for {oracle.cost_mist} MIST"
        )
        assert exc.achievable_bytes == oracle.bytes
        return
    assert oracle.feasible, "planner produced a plan the oracle rules out"
    check_plan_wellformed(book, plan)
    assert plan.bytes_scheduled == transfer.bytes_total == oracle.bytes


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_best_effort_bytes_match_oracle_best_effort(seed):
    rng = random.Random(seed)
    book, transfer = random_instance(rng)
    oracle = offline_optimum(book, transfer)
    plan = planner.plan_on_book(book, transfer, best_effort=True)
    check_plan_wellformed(book, plan)
    target = min(transfer.bytes_total, oracle.bytes)
    assert plan.bytes_scheduled == target


def test_pure_greedy_moves_at_least_90pct_of_oracle_bytes():
    """The ISSUE's quality bar on the heuristic alone: aggregate bytes
    over a fixed randomized workload, no exact fallback to hide behind.

    Aggregate (not per-instance) is the right bar — a single adversarial
    valley can cost the greedy one slot, but across the workload it must
    track the oracle closely.
    """
    greedy_bytes = 0
    oracle_bytes = 0
    instances = 0
    for seed in range(60):
        rng = random.Random(seed)
        book, transfer = random_instance(rng)
        oracle = offline_optimum(book, transfer)
        plan = planner.plan_on_book(
            book, transfer, best_effort=True, exact_fallback=False
        )
        check_plan_wellformed(book, plan)
        cap = min(transfer.bytes_total, oracle.bytes)
        assert plan.bytes_scheduled <= cap
        greedy_bytes += plan.bytes_scheduled
        oracle_bytes += cap
        instances += 1
    assert instances == 60
    assert oracle_bytes > 0
    ratio = greedy_bytes / oracle_bytes
    assert ratio >= 0.90, (
        f"pure greedy moved only {ratio:.1%} of the oracle's bytes "
        f"({greedy_bytes:,} vs {oracle_bytes:,})"
    )


def test_feasible_spend_never_exceeds_oracle_when_unbudgeted():
    """Sanity on price quality: with no budget the planner's spend on
    feasible instances stays within 2x the oracle's minimum cost (the
    greedy is byte-optimal by construction, not cost-optimal — this
    bounds how far off it drifts on the same workload)."""
    spend = 0
    optimum = 0
    for seed in range(60):
        rng = random.Random(seed)
        book, transfer = random_instance(rng)
        if transfer.budget_mist is not None:
            continue
        oracle = offline_optimum(book, transfer)
        if not oracle.feasible:
            continue
        plan = planner.plan_on_book(book, transfer)
        spend += plan.spend_mist
        optimum += oracle.cost_mist
    assert optimum > 0
    assert spend <= 2 * optimum, (
        f"planner spend {spend} vs oracle optimum {optimum}"
    )
