"""Property suite for the malleable transfer planner.

Randomized single- and multi-hop books; every plan the planner emits
must be structurally well-formed (see ``check_plan_wellformed``) and
byte-exact: a feasible plan schedules exactly the requested bytes, a
best-effort plan schedules exactly what ``InfeasibleTransfer`` reported
as achievable.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transfers import (
    DeadlineTransfer,
    InfeasibleTransfer,
    TransferPlan,
    TransferPlanner,
)

from tests.transfers.conftest import (
    T0,
    check_plan_wellformed,
    make_book,
    make_crossing,
    make_listing,
    random_instance,
)

planner = TransferPlanner(indexer=None)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_plan_wellformed_and_exact(seed):
    rng = random.Random(seed)
    book, transfer = random_instance(rng, hops=rng.choice([1, 1, 2]))
    try:
        plan = planner.plan_on_book(book, transfer)
    except InfeasibleTransfer as exc:
        best = planner.plan_on_book(book, transfer, best_effort=True)
        check_plan_wellformed(book, best)
        assert not best.meets_request
        assert best.bytes_scheduled == exc.achievable_bytes
        # Leg assembly prices each merged purchase window with a single
        # ceil, which can only undercut the per-slot ceil sum the
        # scheduler accounted with when it reported achievable spend.
        assert best.spend_mist <= exc.achievable_spend_mist
        return
    check_plan_wellformed(book, plan)
    assert plan.meets_request
    assert plan.bytes_scheduled == transfer.bytes_total
    assert plan.bytes_scheduled <= plan.bytes_capacity


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_greedy_only_plans_stay_wellformed(seed):
    """Even with the exact fallback disabled, emitted plans are valid."""
    rng = random.Random(seed)
    book, transfer = random_instance(rng)
    plan = planner.plan_on_book(
        book, transfer, best_effort=True, exact_fallback=False
    )
    check_plan_wellformed(book, plan)
    assert plan.bytes_scheduled <= transfer.bytes_total


def test_single_listing_exact_fill():
    """One listing per direction, request == full capacity: one leg,
    full rate, bytes match exactly."""
    release, deadline = T0, T0 + 600
    directions = {
        (0, True): [make_listing("i", 50, release, deadline)],
        (0, False): [make_listing("e", 60, release, deadline)],
    }
    book = make_book(directions, release, deadline)
    transfer = DeadlineTransfer(
        crossings=(make_crossing(0),),
        bytes_total=1000 * 600 * 125,
        release=release,
        deadline=deadline,
    )
    plan = planner.plan_on_book(book, transfer)
    check_plan_wellformed(book, plan)
    assert len(plan.legs) == 1
    assert plan.legs[0].rate_kbps == 1000
    assert plan.bytes_scheduled == transfer.bytes_total


def test_request_above_capacity_is_infeasible_with_achievable():
    release, deadline = T0, T0 + 600
    directions = {
        (0, True): [make_listing("i", 50, release, deadline)],
        (0, False): [make_listing("e", 60, release, deadline)],
    }
    book = make_book(directions, release, deadline)
    capacity = 1000 * 600 * 125
    transfer = DeadlineTransfer(
        crossings=(make_crossing(0),),
        bytes_total=capacity + 1,
        release=release,
        deadline=deadline,
    )
    with pytest.raises(InfeasibleTransfer) as exc:
        planner.plan_on_book(book, transfer)
    assert exc.value.achievable_bytes == capacity
    best = planner.plan_on_book(book, transfer, best_effort=True)
    assert best.bytes_scheduled == capacity
    assert not best.meets_request


def test_max_rate_cap_is_respected():
    release, deadline = T0, T0 + 600
    directions = {
        (0, True): [make_listing("i", 50, release, deadline)],
        (0, False): [make_listing("e", 60, release, deadline)],
    }
    book = make_book(directions, release, deadline)
    transfer = DeadlineTransfer(
        crossings=(make_crossing(0),),
        bytes_total=400 * 600 * 125,
        release=release,
        deadline=deadline,
        max_rate_kbps=400,
    )
    plan = planner.plan_on_book(book, transfer)
    check_plan_wellformed(book, plan)
    assert all(leg.rate_kbps <= 400 for leg in plan.legs)
    assert plan.bytes_scheduled == transfer.bytes_total


def test_empty_plan_is_empty():
    release, deadline = T0, T0 + 600
    directions = {
        (0, True): [make_listing("i", 50, release, deadline)],
        (0, False): [make_listing("e", 60, release, deadline)],
    }
    book = make_book(directions, release, deadline)
    transfer = DeadlineTransfer(
        crossings=(make_crossing(0),),
        bytes_total=1,
        release=release,
        deadline=deadline,
    )
    empty = TransferPlan(transfer, ())
    assert empty.bytes_scheduled == 0
    assert empty.spend_mist == 0
    assert empty.buy_count == 0
    assert empty.redeem_count == 0
    assert not empty.meets_request
