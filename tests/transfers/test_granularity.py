"""Mixed-granularity stitching and the ``IncompatibleGranularity`` edges."""

from __future__ import annotations

import pytest

from repro.transfers import (
    BYTES_PER_KBPS_SECOND,
    DeadlineTransfer,
    IncompatibleGranularity,
    Lattice,
    TransferPlanner,
    fold_lattices,
)
from repro.transfers.oracle import offline_optimum

from tests.transfers.conftest import (
    T0,
    check_plan_wellformed,
    make_book,
    make_crossing,
    make_listing,
)

planner = TransferPlanner(indexer=None)


def _transfer(bytes_total, release, deadline, **kw):
    return DeadlineTransfer(
        crossings=(make_crossing(0),),
        bytes_total=bytes_total,
        release=release,
        deadline=deadline,
        **kw,
    )


def test_congruent_mixed_granularities_fold_to_lcm():
    """60s and 120s listings with congruent anchors: the common grid is
    the 120s lcm, and plans stitch across both listings on it."""
    release, deadline = T0, T0 + 720
    directions = {
        (0, True): [
            make_listing("g60", 20, release, T0 + 360, granularity=60),
            make_listing("g120", 80, release, deadline, granularity=120),
        ],
        (0, False): [
            make_listing("e", 40, release, deadline, granularity=60),
        ],
    }
    book = make_book(directions, release, deadline)
    assert book.lattice.step == 120
    assert all(expiry - start == 120 for start, expiry in book.slots)
    transfer = _transfer(1000 * 720 * BYTES_PER_KBPS_SECOND, release, deadline)
    plan = planner.plan_on_book(book, transfer)
    check_plan_wellformed(book, plan)
    assert plan.meets_request
    ingress_ids = {
        piece.listing_id
        for leg in plan.legs
        for hop in leg.hops
        for piece in hop.ingress_pieces
    }
    assert ingress_ids == {"g60", "g120"}
    assert offline_optimum(book, transfer).feasible


def test_incongruent_anchors_raise_with_named_classes():
    """g=60 anchored at T0 vs g=90 anchored at T0+15: gcd is 30 and the
    anchors differ by 15, so no common aligned grid exists."""
    release, deadline = T0, T0 + 720
    directions = {
        (0, True): [
            make_listing("a", 20, release, deadline, granularity=60),
            make_listing("b", 30, T0 + 15, T0 + 15 + 630, granularity=90),
        ],
        (0, False): [
            make_listing("e", 40, release, deadline, granularity=60),
        ],
    }
    assert (
        fold_lattices(Lattice(T0 % 60, 60), Lattice((T0 + 15) % 90, 90))
        is None
    )
    with pytest.raises(IncompatibleGranularity) as exc:
        make_book(directions, release, deadline)
    message = str(exc.value)
    assert "60s@" in message and "90s@" in message
    assert "no common aligned grid" in message


def test_common_granule_exceeding_direction_supply_raises():
    """lcm(60, 120) = 120s, but every egress listing spans only 60s:
    no egress slot could ever be purchased on the common grid."""
    release, deadline = T0, T0 + 720
    directions = {
        (0, True): [
            make_listing("i", 20, release, deadline, granularity=120),
        ],
        (0, False): [
            make_listing(f"e{j}", 40, T0 + 60 * j, T0 + 60 * (j + 1))
            for j in range(12)
        ],
    }
    with pytest.raises(IncompatibleGranularity) as exc:
        make_book(directions, release, deadline)
    assert "exceeds every listing on crossing 0 egress" in str(exc.value)


def test_common_granule_above_redeem_cap_raises():
    """A granule coarser than the 65535s redeem duration cap can never
    produce a redeemable window."""
    g = 70_000
    release, deadline = T0, T0 + 2 * g
    directions = {
        (0, True): [
            make_listing("i", 20, release, deadline, granularity=g),
        ],
        (0, False): [
            make_listing("e", 40, release, deadline, granularity=g),
        ],
    }
    with pytest.raises(IncompatibleGranularity) as exc:
        make_book(directions, release, deadline)
    assert "redeem duration cap" in str(exc.value)


def test_shifted_but_congruent_anchor_folds():
    """Anchors T0 and T0+30 under g=60 and g=90: congruent mod gcd=30,
    so the fold succeeds with step lcm=180 and a shifted anchor."""
    release, deadline = T0, T0 + 1080
    directions = {
        (0, True): [
            make_listing("a", 20, release, deadline, granularity=60),
            make_listing("b", 10, T0 + 30, T0 + 930, granularity=90),
        ],
        (0, False): [
            make_listing("e", 40, release, deadline, granularity=60),
        ],
    }
    book = make_book(directions, release, deadline)
    assert book.lattice.step == 180
    transfer = _transfer(
        1000 * 360 * BYTES_PER_KBPS_SECOND, release, deadline
    )
    plan = planner.plan_on_book(book, transfer)
    check_plan_wellformed(book, plan)
    assert plan.meets_request
