"""Adversarial transfer instances aimed at the planner's search edges."""

from __future__ import annotations

import pytest

from repro.transfers import (
    BYTES_PER_KBPS_SECOND,
    DeadlineTransfer,
    InfeasibleTransfer,
    TransferPlanner,
)
from repro.transfers.oracle import offline_optimum

from tests.transfers.conftest import (
    T0,
    check_plan_wellformed,
    make_book,
    make_crossing,
    make_listing,
)

planner = TransferPlanner(indexer=None)


def _transfer(bytes_total, release, deadline, **kw):
    return DeadlineTransfer(
        crossings=(make_crossing(0),),
        bytes_total=bytes_total,
        release=release,
        deadline=deadline,
        **kw,
    )


def test_valley_narrower_than_granule_is_invisible():
    """A dirt-cheap listing whose whole validity fits inside one common
    granule covers no grid slot: the planner must not try to use it, and
    the oracle must agree it adds nothing."""
    release, deadline = T0, T0 + 300
    directions = {
        (0, True): [
            make_listing("base-i", 80, release, deadline, granularity=60),
            # 40 seconds of validity, granule-aligned to its own g=20
            # lattice but spanning no full 60-second common slot.
            make_listing(
                "valley", 1, T0 + 40, T0 + 80, granularity=20
            ),
        ],
        (0, False): [
            make_listing("base-e", 80, release, deadline, granularity=60),
        ],
    }
    book = make_book(directions, release, deadline)
    assert book.lattice.step == 60
    for slot in book.slots:
        cover = book.covering(slot)
        assert all(
            listing.listing_id != "valley"
            for listings in cover.values()
            for listing in listings
        )
    transfer = _transfer(1000 * 300 * BYTES_PER_KBPS_SECOND, release, deadline)
    plan = planner.plan_on_book(book, transfer)
    check_plan_wellformed(book, plan)
    used = {
        piece.listing_id
        for leg in plan.legs
        for hop in leg.hops
        for piece in hop.ingress_pieces + hop.egress_pieces
    }
    assert "valley" not in used
    oracle = offline_optimum(book, transfer)
    assert oracle.feasible
    assert plan.bytes_scheduled == oracle.bytes


def test_plateau_only_book_collapses_to_one_segment():
    """Uniform full-span listings: the whole horizon is one covering
    plateau, and plateau-skip must return the same options as the naive
    per-slot search."""
    release, deadline = T0, T0 + 600
    directions = {
        (0, True): [make_listing("i", 50, release, deadline)],
        (0, False): [make_listing("e", 50, release, deadline)],
    }
    book = make_book(directions, release, deadline)
    assert len(book._segments()) == 1
    target = 1000 * 600 * BYTES_PER_KBPS_SECOND // 2
    skip = book.all_slot_options(target_bytes=target, plateau_skip=True)
    naive = book.all_slot_options(target_bytes=target, plateau_skip=False)
    assert skip == naive
    plan = planner.plan_on_book(book, _transfer(target, release, deadline))
    check_plan_wellformed(book, plan)
    assert plan.meets_request


def test_plateau_skip_equals_naive_on_staggered_book():
    """Segment caching must be invisible: staggered boundaries, varied
    prices, clipped edge slots — identical option sets either way."""
    release, deadline = T0, T0 + 480
    directions = {
        (0, True): [
            make_listing("a", 90, release, T0 + 240, granularity=60),
            make_listing("b", 30, T0 + 120, deadline, granularity=60),
        ],
        (0, False): [
            make_listing("c", 50, release, deadline, granularity=60),
            make_listing("d", 20, T0 + 180, T0 + 420, granularity=60),
        ],
    }
    book = make_book(directions, release, deadline)
    assert len(book._segments()) > 1
    target = 1000 * 480 * BYTES_PER_KBPS_SECOND // 3
    skip = book.all_slot_options(target_bytes=target, plateau_skip=True)
    naive = book.all_slot_options(target_bytes=target, plateau_skip=False)
    assert skip == naive


def test_budget_exactly_at_oracle_spend():
    """Budget == the oracle's minimum cost must be feasible; one MIST
    less must fail with the oracle's best-within-budget bytes."""
    release, deadline = T0, T0 + 600
    directions = {
        (0, True): [
            make_listing("cheap-i", 20, release, T0 + 300, granularity=60),
            make_listing("dear-i", 100, release, deadline, granularity=60),
        ],
        (0, False): [
            make_listing("e", 40, release, deadline, granularity=60),
        ],
    }
    book = make_book(directions, release, deadline)
    bytes_total = 1000 * 450 * BYTES_PER_KBPS_SECOND
    unbudgeted = offline_optimum(book, _transfer(bytes_total, release, deadline))
    assert unbudgeted.feasible
    cost = unbudgeted.cost_mist
    assert cost > 0

    exact = _transfer(bytes_total, release, deadline, budget_mist=cost)
    plan = planner.plan_on_book(book, exact)
    check_plan_wellformed(book, plan)
    assert plan.meets_request
    assert plan.spend_mist <= cost

    starved = _transfer(bytes_total, release, deadline, budget_mist=cost - 1)
    with pytest.raises(InfeasibleTransfer) as exc:
        planner.plan_on_book(book, starved)
    assert exc.value.achievable_bytes < bytes_total
    assert exc.value.achievable_bytes == offline_optimum(book, starved).bytes


def test_listing_expiring_mid_plan_forces_stitching():
    """The cheap ingress listing dies halfway: a full-rate plan must
    stitch two listings into one leg, adjacent pieces, distinct ids."""
    release, deadline = T0, T0 + 600
    directions = {
        (0, True): [
            make_listing("cheap", 10, release, T0 + 300, granularity=60),
            make_listing("dear", 90, release, deadline, granularity=60),
        ],
        (0, False): [
            make_listing("e", 40, release, deadline, granularity=60),
        ],
    }
    book = make_book(directions, release, deadline)
    transfer = _transfer(1000 * 600 * BYTES_PER_KBPS_SECOND, release, deadline)
    plan = planner.plan_on_book(book, transfer)
    check_plan_wellformed(book, plan)
    assert plan.meets_request
    pieces = [
        piece for leg in plan.legs for hop in leg.hops
        for piece in hop.ingress_pieces
    ]
    assert {p.listing_id for p in pieces} == {"cheap", "dear"}
    boundary = [p for p in pieces if p.listing_id == "cheap"]
    assert max(p.expiry for p in boundary) == T0 + 300
