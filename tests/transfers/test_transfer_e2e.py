"""End-to-end transfers on a live deployment: fuse-before-redeem,
rollback on vanished supply, and mixed-granularity failures.

The fuse guarantee is stated as an A/B: a transfer stitched across two
600-second listings (buy + buy + fuse + one redeem per hop) must leave
every on-path AS's ACTIVE calendar **byte-identical** to the same
transfer bought from one 1200-second listing — on the monolithic,
in-process sharded, and multiprocess calendar backends alike.
"""

from __future__ import annotations

import pytest

from tests.conftest import T0
from tests.marketdata.conftest import RawMarket

from repro.admission import ACTIVE
from repro.clock import SimClock
from repro.controlplane import deploy_market, execute_transfer
from repro.marketdata import IncompatibleGranularity
from repro.netsim import linear_path
from repro.pathadm import calendar_fingerprint
from repro.scion import as_crossings
from repro.shardengine import EngineSpec
from repro.transfers import DeadlineTransfer, TransferAborted, TransferPlanner

RATE_KBPS = 5_000
WINDOW = 1200  # two 600s listings in the stitched arm, one listing in the other

ENGINES = {
    "monolithic": (None, None),
    "sharded": (600.0, EngineSpec(kind="sharded", shard_seconds=600.0)),
    "multiprocess": (
        600.0,
        EngineSpec(kind="multiprocess", shard_seconds=600.0, num_workers=2),
    ),
}


def _deploy(
    asset_duration: int,
    engine_key: str,
    extra_window=None,
    interface_capacity_kbps=None,
):
    shard_seconds, engine = ENGINES[engine_key]
    topology, path = linear_path(2, timestamp=T0)
    deployment = deploy_market(
        topology,
        clock=SimClock(float(T0)),
        asset_start=T0,
        asset_duration=asset_duration,
        price_micromist_per_unit=50,
        shard_seconds=shard_seconds,
        engine=engine,
        interface_capacity_kbps=interface_capacity_kbps,
    )
    if extra_window is not None:
        start, expiry = extra_window
        for autonomous_system in topology.ases:
            service = deployment.service(autonomous_system.isd_as)
            for interface in [0] + sorted(autonomous_system.interfaces):
                for is_ingress in (True, False):
                    listed = service.issue_and_list(
                        deployment.marketplace,
                        interface,
                        is_ingress,
                        10_000_000,
                        start,
                        expiry,
                        50,
                    )
                    assert listed.effects.ok
    return deployment, as_crossings(path)


def _active_fingerprints(deployment, crossings):
    prints = {}
    for crossing in crossings:
        admission = deployment.service(crossing.isd_as).admission
        for interface, is_ingress in (
            (crossing.ingress, True),
            (crossing.egress, False),
        ):
            calendar = admission.calendar(interface, is_ingress, ACTIVE)
            prints[(str(crossing.isd_as), interface, is_ingress)] = (
                calendar_fingerprint(calendar)
            )
    return prints


def _run_transfer(deployment, crossings):
    host = deployment.new_host(name="mover")
    return execute_transfer(
        deployment,
        host,
        crossings,
        bytes_total=RATE_KBPS * WINDOW * 125,
        deadline=T0 + WINDOW,
        release=T0,
        max_rate_kbps=RATE_KBPS,
    )


@pytest.mark.parametrize("engine_key", sorted(ENGINES))
def test_fused_stitch_matches_single_rectangle(engine_key):
    stitched, crossings_a = _deploy(
        600, engine_key, extra_window=(T0 + 600, T0 + WINDOW)
    )
    rectangle, crossings_b = _deploy(WINDOW, engine_key)
    try:
        outcome_a = _run_transfer(stitched, crossings_a)
        outcome_b = _run_transfer(rectangle, crossings_b)

        # The stitched arm really did stitch: two pieces per direction,
        # fused down to ONE redeem per hop; the rectangle arm bought one.
        for leg in outcome_a.plan.legs:
            for hop in leg.hops:
                assert len(hop.ingress_pieces) == 2
                assert len(hop.egress_pieces) == 2
        for leg in outcome_b.plan.legs:
            for hop in leg.hops:
                assert len(hop.ingress_pieces) == 1
                assert len(hop.egress_pieces) == 1
        assert outcome_a.plan.redeem_count == outcome_b.plan.redeem_count
        assert outcome_a.plan.bytes_scheduled == outcome_b.plan.bytes_scheduled

        # Same reservations delivered...
        assert [r.resinfo for r in outcome_a.reservations] == [
            r.resinfo for r in outcome_b.reservations
        ]
        # ...and byte-identical ACTIVE calendars at every crossed
        # interface (the ISSUED layers legitimately differ — the stitched
        # deployment listed twice as many assets).
        prints_a = _active_fingerprints(stitched, crossings_a)
        prints_b = _active_fingerprints(rectangle, crossings_b)
        assert prints_a == prints_b
        assert any(prints_a.values()), "transfer left no active-calendar trace"
    finally:
        stitched.close()
        rectangle.close()


def test_fuse_then_resplit_roundtrip():
    """Ledger-level: a fused commitment re-splits cleanly at the seam."""
    market = RawMarket()
    listing = market.issue_and_list(
        interface=1, is_ingress=True, bandwidth_kbps=10_000,
        start=T0, expiry=T0 + 1200,
    )
    # Descending-start buys: the head remainder keeps the listing id.
    late = market.buy(listing, T0 + 600, T0 + 1200, 2_000)
    assert late.ok, late.error
    early = market.buy(listing, T0, T0 + 600, 2_000)
    assert early.ok, early.error
    fused = market.run(
        market.buyer, "asset", "fuse_time",
        first=early.returns[0]["asset"], second=late.returns[0]["asset"],
    ).returns[0]["asset"]
    fused_obj = market.ledger.get_object(fused)
    assert fused_obj.payload["start"] == T0
    assert fused_obj.payload["expiry"] == T0 + 1200

    split = market.run(
        market.buyer, "asset", "split_time", asset=fused, split_at=T0 + 600
    ).returns[0]
    first = market.ledger.get_object(split["first"])
    second = market.ledger.get_object(split["second"])
    assert (first.payload["start"], first.payload["expiry"]) == (T0, T0 + 600)
    assert (second.payload["start"], second.payload["expiry"]) == (
        T0 + 600,
        T0 + 1200,
    )
    assert first.payload["bandwidth_kbps"] == 2_000
    assert second.payload["bandwidth_kbps"] == 2_000


def test_vanished_listing_aborts_cleanly_both_ways():
    """A rival buys out the supply between planning and execution.

    With preflight the client aborts before submitting anything; without
    it the ledger rejects the transaction and rolls it back — either way
    no asset, reservation, coin, or active-calendar byte changes hands.
    """
    deployment, crossings = _deploy(600, "monolithic")
    try:
        host = deployment.new_host(name="victim")
        planner = TransferPlanner(host.indexer(deployment.marketplace))
        plan = planner.plan(
            DeadlineTransfer(
                crossings=tuple(crossings),
                bytes_total=RATE_KBPS * 600 * 125,
                release=T0,
                deadline=T0 + 600,
                max_rate_kbps=RATE_KBPS,
            )
        )
        assert plan.meets_request

        # The rival drains every listing the plan relies on.
        rival = deployment.new_host(name="rival")
        execute_transfer(
            deployment,
            rival,
            crossings,
            bytes_total=10_000_000 * 600 * 125,
            deadline=T0 + 600,
            release=T0,
        )
        baseline = _active_fingerprints(deployment, crossings)
        coin_before = deployment.ledger.get_object(host.payment_coin).payload[
            "balance"
        ]

        with pytest.raises(TransferAborted) as preflighted:
            host.execute_transfer_plan(deployment.marketplace, plan)
        assert preflighted.value.submitted is None  # nothing ever submitted

        with pytest.raises(TransferAborted) as raced:
            host.execute_transfer_plan(
                deployment.marketplace, plan, preflight=False
            )
        assert raced.value.submitted is not None
        assert not raced.value.submitted.effects.ok

        # Ledger atomicity + delivery silence: nothing moved anywhere.
        assert host.owned_assets() == []
        assert host.collect_reservations() == []
        coin_after = deployment.ledger.get_object(host.payment_coin).payload[
            "balance"
        ]
        assert coin_after == coin_before
        for crossing in crossings:
            assert deployment.service(crossing.isd_as).poll_and_deliver() == []
        assert _active_fingerprints(deployment, crossings) == baseline
    finally:
        deployment.close()


def test_mixed_incongruent_granularity_surfaces_from_transfer():
    """A seller listing on a shifted 90s lattice makes the whole book
    unplannable: ``transfer`` must raise ``IncompatibleGranularity``, not
    an opaque failure, and submit nothing."""
    deployment, crossings = _deploy(
        600, "monolithic", interface_capacity_kbps=20_000_000
    )
    try:
        for crossing in crossings:
            service = deployment.service(crossing.isd_as)
            listed = service.issue_and_list(
                deployment.marketplace,
                crossing.ingress,
                True,
                10_000,
                T0 + 15,
                T0 + 15 + 540,
                50,
                90,
            )
            assert listed.effects.ok
        host = deployment.new_host(name="mover")
        with pytest.raises(IncompatibleGranularity):
            host.transfer(
                deployment.marketplace,
                crossings,
                bytes_total=1000 * 600 * 125,
                deadline=T0 + 600,
                release=T0,
            )
        assert host.owned_assets() == []
    finally:
        deployment.close()
