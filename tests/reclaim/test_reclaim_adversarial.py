"""Adversarial no-show scenarios: aliasing and the late-waking sender.

The usage feed samples *cumulative* priority byte counters, so when a
buyer's packets land is invisible to the no-show judgment — only how
many bytes the data plane actually carried.  A sender bursting exactly
at the sampling instants gets the same verdict as one spread evenly;
and a genuine no-show that wakes up after reclamation finds its bucket
draining at the reclaimed rate, demoted to best effort by the policer.
"""

from repro.admission import ACTIVE, AdmissionController
from repro.hummingbird.policing import PerInterfacePolicer, PolicingVerdict
from repro.reclaim import ReclamationEngine, UsageReporter

INGRESS = 1
BOOKED = 200  # kbps; 250 B / 10 ms is exactly this rate
PACKET = 250


def _engine(policer, **overrides):
    controller = AdmissionController(100_000)
    decision = controller.admit_reservation(
        INGRESS, True, BOOKED, 0.0, 100.0, tag="adv"
    )
    options = dict(
        grace_seconds=0.2,
        no_show_threshold=0.5,
        min_retained_kbps=1,
        demote=policer.set_limit,
    )
    options.update(overrides)
    engine = ReclamationEngine(
        controller,
        UsageReporter(policer.usage_snapshot, interval=0.05),
        **options,
    )
    return controller, engine, decision.commitment.commitment_id


def test_burst_exactly_at_sampling_instants_is_not_reclaimed():
    """Cumulative counters make burst-phase aliasing structurally impossible.

    The sender transmits *only* at the scan instants — the worst phase
    for an instantaneous-rate sampler — in bucket-conformant bursts that
    add up to its full booked rate.  Every scan sees the true volume.
    """
    policer = PerInterfacePolicer(capacity=64)
    controller, engine, commitment_id = _engine(policer)
    engine.track(7, INGRESS, BOOKED, 0.0, 100.0, [(INGRESS, True, commitment_id)])

    for step in range(1, 41):
        now = step * 0.05
        # One 50 ms burst (5 packets x 10 ms drain) exactly at the instant
        # the engine samples: the full booked rate, maximally aliased.
        for _ in range(5):
            verdict = policer.array_for(INGRESS).monitor(7, BOOKED, PACKET, now)
            assert verdict is PolicingVerdict.FWD_FLYOVER
        engine.scan(now)

    tracked = engine.tracked(7)
    assert tracked.reclaimed_at is None
    assert engine.events == []
    calendar = controller.calendar(INGRESS, True, ACTIVE)
    assert calendar.headroom(0.0, 100.0) == 100_000 - BOOKED


def test_phase_offset_does_not_change_the_verdict():
    """Two identical-volume senders, one aligned with sampling, one offset."""
    outcomes = []
    for offset in (0.0, 0.025):
        policer = PerInterfacePolicer(capacity=64)
        _, engine, commitment_id = _engine(policer)
        engine.track(
            7, INGRESS, BOOKED, 0.0, 100.0, [(INGRESS, True, commitment_id)]
        )
        for step in range(1, 41):
            now = step * 0.05
            for _ in range(5):
                policer.array_for(INGRESS).monitor(
                    7, BOOKED, PACKET, now + offset
                )
            engine.scan(now)
        outcomes.append(
            (engine.tracked(7).reclaimed_at is None, len(engine.events))
        )
    assert outcomes[0] == outcomes[1] == (True, 0)


def test_late_waking_no_show_is_demoted_by_the_policer():
    """After reclamation the bucket drains at the retained rate only."""
    policer = PerInterfacePolicer(capacity=64)
    controller, engine, commitment_id = _engine(policer)
    engine.track(7, INGRESS, BOOKED, 0.0, 100.0, [(INGRESS, True, commitment_id)])

    # Sanity: before reclamation the same packet rides with priority.
    probe = PerInterfacePolicer(capacity=64)
    assert (
        probe.array_for(INGRESS).monitor(7, BOOKED, PACKET, 1.0)
        is PolicingVerdict.FWD_FLYOVER
    )

    events = engine.scan(1.0)  # never sent a byte: a genuine no-show
    assert len(events) == 1
    assert events[0].new_kbps == 1
    calendar = controller.calendar(INGRESS, True, ACTIVE)
    assert calendar.headroom(0.0, 100.0) == 100_000 - 1

    # The sender wakes up with its original header class; the installed
    # limit drains the bucket at 1 kbps, so a normal packet is demoted.
    verdict = policer.array_for(INGRESS).monitor(7, BOOKED, PACKET, 2.0)
    assert verdict is PolicingVerdict.FWD_BEST_EFFORT

    # The retained trickle still fits: 6 B at 1 kbps is under BurstTime.
    assert (
        policer.array_for(INGRESS).monitor(7, BOOKED, 6, 2.0)
        is PolicingVerdict.FWD_FLYOVER
    )

    # Best-effort traffic is not attributed to the reservation, so the
    # wake-up above did not count toward usage; the trickle did.
    assert policer.usage_bytes(INGRESS, 7) == 6

    # Operators can reverse the demotion; full-rate packets ride again.
    policer.clear_limit(INGRESS, 7)
    assert (
        policer.array_for(INGRESS).monitor(7, BOOKED, PACKET, 3.0)
        is PolicingVerdict.FWD_FLYOVER
    )


def test_false_reclaim_is_flagged_when_not_demoted():
    """Without the demotion hook, a woken sender is flagged exactly once.

    With ``demote`` wired the policer caps priority traffic at the
    retained rate, so observed usage can never exceed it — the detector
    exists for calendar-only deployments where it can.
    """
    policer = PerInterfacePolicer(capacity=64)
    _, engine, commitment_id = _engine(policer, min_retained_kbps=10, demote=None)
    engine.track(7, INGRESS, BOOKED, 0.0, 100.0, [(INGRESS, True, commitment_id)])
    assert len(engine.scan(1.0)) == 1  # reclaimed to 10 kbps

    # The sender wakes at its full booked rate; nothing caps the bucket.
    for step in range(95):
        verdict = policer.array_for(INGRESS).monitor(
            7, BOOKED, PACKET, 1.05 + step * 0.01
        )
        assert verdict is PolicingVerdict.FWD_FLYOVER
    engine.scan(2.0)
    assert engine.false_reclaims == 1
    assert engine.tracked(7).false_reclaim
    # Flagged once, not once per scan.
    engine.scan(2.5)
    assert engine.false_reclaims == 1
