"""Unit coverage for the loop's two small parts: sampler and adaptive policy."""

import pytest

from repro.admission import AdmissionRequest, CapacityCalendar
from repro.reclaim import AdaptiveOverbooking, UsageReporter


class TestUsageReporter:
    def test_cadence_gates_sampling(self):
        calls = []

        def source():
            calls.append(1)
            return {1: {7: 100 * len(calls)}}

        reporter = UsageReporter(source, interval=1.0)
        assert reporter.sample(0.0)
        assert not reporter.sample(0.5)  # too early: no source call
        assert reporter.sample(1.0)
        assert len(calls) == 2
        assert reporter.samples_taken == 2
        assert reporter.usage_bytes(1, 7) == 200

    def test_observed_rate_is_cumulative_average(self):
        reporter = UsageReporter(lambda: {1: {7: 25_000}}, interval=0.1)
        reporter.sample(2.0)
        # 25,000 B over 2 s = 100,000 bits/s = 100 kbps.
        assert reporter.observed_kbps(1, 7, 2.0) == pytest.approx(100.0)
        assert reporter.observed_kbps(1, 7, 0.0) == 0.0
        assert reporter.observed_kbps(9, 9, 2.0) == 0.0  # never seen

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            UsageReporter(lambda: {}, interval=0)


class TestAdaptiveOverbooking:
    def test_factor_is_inverse_show_up_rate(self):
        policy = AdaptiveOverbooking(alpha=1.0, max_factor=3.0)
        calendar = CapacityCalendar(1000)
        assert policy.limit_factor(calendar) == 1.0  # no evidence yet
        assert policy.observe(calendar, 0.5) == pytest.approx(2.0)
        assert policy.observe(calendar, 1.0) == 1.0  # honest demand: back off
        # Chronic no-shows push the factor to the ceiling, never past it.
        assert policy.observe(calendar, 0.0) == 3.0
        assert policy.observe(calendar, -5.0) == 3.0  # clamped input

    def test_ewma_smooths_observations(self):
        policy = AdaptiveOverbooking(alpha=0.5)
        calendar = CapacityCalendar(1000)
        policy.observe(calendar, 1.0)
        policy.observe(calendar, 0.0)
        assert policy.show_up_ewma(calendar) == pytest.approx(0.5)
        assert policy.limit_factor(calendar) == pytest.approx(2.0)

    def test_state_is_per_calendar(self):
        policy = AdaptiveOverbooking()
        busy, idle = CapacityCalendar(1000), CapacityCalendar(1000)
        policy.observe(busy, 1.0)
        policy.observe(idle, 0.25)
        assert policy.limit_factor(busy) == 1.0
        assert policy.limit_factor(idle) > 1.0
        assert policy.show_up_ewma(CapacityCalendar(1000)) is None

    def test_admission_uses_the_learned_factor(self):
        policy = AdaptiveOverbooking(initial_factor=1.0, max_factor=2.0)
        calendar = CapacityCalendar(1000)
        assert not policy.admit(calendar, AdmissionRequest(1500, 0, 100)).admitted
        policy.observe(calendar, 0.5)  # half the demand is phantom
        assert policy.admit(calendar, AdmissionRequest(1500, 0, 100)).admitted
        assert not policy.admit(calendar, AdmissionRequest(600, 0, 100)).admitted

    def test_initial_factor_applies_before_evidence(self):
        policy = AdaptiveOverbooking(initial_factor=1.5)
        calendar = CapacityCalendar(1000)
        assert policy.admit(calendar, AdmissionRequest(1400, 0, 100)).admitted

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveOverbooking(max_factor=0.5)
        with pytest.raises(ValueError):
            AdaptiveOverbooking(alpha=0)
        with pytest.raises(ValueError):
            AdaptiveOverbooking(alpha=1.5)
