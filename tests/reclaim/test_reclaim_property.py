"""Property suite: reclamation is safe on every calendar backend.

Three invariants, driven by hypothesis:

(a) the reclamation engine never shrinks a commitment below the observed
    rate — ``retain_headroom >= 1`` and the min-retained floor guarantee
    the interface keeps headroom for traffic the data plane has seen;
(b) a failure mid-reclaim rolls back byte-identically (worker-level
    batch rollback, checked with the pathadm fingerprints);
(c) one interleaving of commit/reclaim/release produces identical
    verdicts and identical headroom profiles on the monolithic, sharded,
    and multiprocess backends — and identical fingerprints where the
    layouts are comparable (sharded vs. multiprocess).
"""

import itertools
import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.admission import ACTIVE, AdmissionController, CapacityCalendar, ShardedCalendar
from repro.pathadm import calendar_fingerprint
from repro.reclaim import ReclamationEngine, UsageReporter
from repro.shardengine import EngineSpec, build_engine
from repro.shardengine.worker import _WorkerState

SHARD = 100.0
CAPACITY = 1_000_000
HORIZON = 1_000.0

# -- (a) reclaim never dips below observed usage --------------------------------


@settings(max_examples=60, deadline=None)
@given(
    booked=st.integers(1, 5_000),
    observed_bytes=st.integers(0, 2_000_000),
    threshold=st.floats(0.05, 1.0),
    headroom_factor=st.floats(1.0, 3.0),
    min_retained=st.integers(1, 50),
)
def test_reclaim_never_lowers_headroom_below_observed(
    booked, observed_bytes, threshold, headroom_factor, min_retained
):
    controller = AdmissionController(100_000)
    decision = controller.admit_reservation(1, True, booked, 0.0, 100.0, tag="p")
    assert decision.admitted
    usage = {1: {7: observed_bytes}}
    reporter = UsageReporter(lambda: usage, interval=0.1)
    engine = ReclamationEngine(
        controller,
        reporter,
        grace_seconds=0.0,
        no_show_threshold=threshold,
        retain_headroom=headroom_factor,
        min_retained_kbps=min_retained,
    )
    engine.track(
        7, 1, booked, 0.0, 100.0, [(1, True, decision.commitment.commitment_id)]
    )
    now = 10.0
    events = engine.scan(now)
    observed_kbps = observed_bytes * 8.0 / 1000.0 / now
    tracked = engine.tracked(7)
    calendar = controller.calendar(1, True, ACTIVE)

    no_show = observed_kbps < threshold * booked
    target = max(min_retained, math.ceil(observed_kbps * headroom_factor))
    if no_show and target < booked:
        assert len(events) == 1
        assert tracked.reclaimed_to_kbps == target
        # The retained rate covers everything the data plane observed.
        assert tracked.reclaimed_to_kbps >= observed_kbps
        assert calendar.headroom(0.0, 100.0) == 100_000 - target
    else:
        assert events == []
        assert tracked.reclaimed_at is None
        assert calendar.headroom(0.0, 100.0) == 100_000 - booked


# -- (b) mid-reclaim failure rolls back byte-identically ------------------------


@settings(max_examples=60, deadline=None)
@given(
    pieces=st.lists(
        st.tuples(
            st.integers(0, 7),  # shard index
            st.integers(2, 500),  # bandwidth (>= 2 so a shrink target exists)
        ),
        min_size=1,
        max_size=10,
    ),
    poison_seed=st.integers(0, 10_000),
    data=st.data(),
)
def test_worker_reclaim_batch_failure_restores_every_shard(
    pieces, poison_seed, data
):
    """The worker applies its whole stripe of a reclaim or none of it."""
    key = ("prop", 0, True)
    state = _WorkerState(0, SHARD)
    state.register({"key": key, "capacity_kbps": CAPACITY})
    items = [
        (key, shard, bw, shard * SHARD + 1.0, (shard + 1) * SHARD - 1.0, "p")
        for shard, bw in pieces
    ]
    ids = state.commit_pieces({"items": items})
    before = {
        shard: calendar_fingerprint(state.shards[key][shard])
        for shard, _ in pieces
    }

    reclaim_items = [
        (key, shard, piece_id, data.draw(st.integers(1, bw - 1), label="target"))
        for (shard, bw), piece_id in zip(pieces, ids)
    ]
    # Poison one item with an invalid (non-shrinking) target: the batch
    # raises partway and must restore every already-shrunk piece.
    poison = poison_seed % len(reclaim_items)
    k, shard, piece_id, _ = reclaim_items[poison]
    reclaim_items[poison] = (k, shard, piece_id, pieces[poison][1])
    with pytest.raises(ValueError):
        state.reclaim_pieces({"items": reclaim_items})

    after = {
        shard: calendar_fingerprint(state.shards[key][shard])
        for shard, _ in pieces
    }
    assert after == before


# -- (c) backend equivalence under random interleavings -------------------------

OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("commit"),
            st.integers(1, 400),  # bandwidth
            st.integers(0, 18),  # start slot (x50s)
            st.integers(1, 6),  # duration slots
        ),
        st.tuples(
            st.just("reclaim"),
            st.integers(0, 30),  # which live commitment
            st.integers(0, 130),  # target, percent of current bandwidth
        ),
        st.tuples(st.just("release"), st.integers(0, 30), st.just(0)),
    ),
    min_size=1,
    max_size=24,
)


def _run(calendar, ops):
    """Apply one op sequence; return a verdict per op plus headroom probes."""
    verdicts = []
    live = []
    for op in ops:
        if op[0] == "commit":
            _, bandwidth, slot, length = op
            piece = calendar.commit(
                bandwidth, slot * 50.0, min(HORIZON, (slot + length) * 50.0), "p"
            )
            live.append((piece.commitment_id, bandwidth))
            verdicts.append(("committed", piece.bandwidth_kbps))
        elif not live:
            verdicts.append(("noop", None))
        elif op[0] == "reclaim":
            _, index, percent = op
            slot = index % len(live)
            commitment_id, bandwidth = live[slot]
            target = bandwidth * percent // 100
            try:
                shrunk = calendar.reclaim(commitment_id, target)
            except ValueError:
                verdicts.append(("rejected", None))
            else:
                live[slot] = (commitment_id, shrunk.bandwidth_kbps)
                verdicts.append(("reclaimed", shrunk.bandwidth_kbps))
        else:
            _, index, _ = op
            released = calendar.release(live.pop(index % len(live))[0])
            verdicts.append(("released", released.bandwidth_kbps))
    probes = tuple(
        calendar.headroom(t, t + 50.0) for t in range(0, int(HORIZON), 50)
    )
    return verdicts, probes


@settings(max_examples=80, deadline=None)
@given(ops=OPS)
def test_monolithic_and_sharded_verdicts_identical(ops):
    mono = _run(CapacityCalendar(CAPACITY), ops)
    sharded = _run(ShardedCalendar(CAPACITY, shard_seconds=SHARD), ops)
    assert mono == sharded


@pytest.fixture(scope="module")
def mp_engine():
    engine = build_engine(
        EngineSpec(kind="multiprocess", shard_seconds=SHARD, num_workers=2)
    )
    try:
        yield engine, itertools.count()
    finally:
        engine.close()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=OPS)
def test_multiprocess_matches_sharded_including_fingerprints(mp_engine, ops):
    engine, fresh = mp_engine
    reference = ShardedCalendar(CAPACITY, shard_seconds=SHARD)
    remote = engine.calendar(("prop", next(fresh), True), CAPACITY)
    assert _run(reference, ops) == _run(remote, ops)
    assert calendar_fingerprint(remote) == calendar_fingerprint(reference)
