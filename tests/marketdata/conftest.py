"""Shared harness: a minimal seller-driven market without a full deployment."""

import random

import pytest

from repro.contracts.asset import AssetContract
from repro.contracts.coin import CoinContract
from repro.contracts.market import MarketContract
from repro.controlplane.pki import CpPki
from repro.ledger.accounts import Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.transactions import Command, Transaction
from repro.scion.addresses import IsdAs


class RawMarket:
    """One seller AS, one buyer, one marketplace, driven by raw transactions."""

    def __init__(self, seed: int = 99, isd_as: IsdAs = IsdAs(1, 9)) -> None:
        rng = random.Random(seed)
        pki = CpPki(seed=seed)
        self.isd_as = isd_as
        self.ledger = Ledger()
        self.ledger.register_contract(CoinContract())
        self.ledger.register_contract(AssetContract(pki))
        self.ledger.register_contract(MarketContract())
        self.seller = Account.generate(rng, "seller")
        self.buyer = Account.generate(rng, "buyer")
        cert = pki.issue_certificate(isd_as, self.seller.signing_key.public)
        proof = self.seller.signing_key.sign(self.seller.address.encode(), rng)
        self.token = self.run(
            self.seller, "asset", "register_as",
            certificate=cert, commitment=proof.commitment, response=proof.response,
        ).returns[0]["token"]
        self.coin = self.run(
            self.buyer, "coin", "mint", amount=sui_to_mist(1000)
        ).returns[0]["coin"]
        self.marketplace = self.run(
            self.seller, "market", "create_marketplace"
        ).returns[0]["marketplace"]
        self.run(self.seller, "market", "register_seller", marketplace=self.marketplace)

    def run(self, account, contract, function, **args):
        effects = self.try_run(account, contract, function, **args)
        assert effects.ok, f"{function}: {effects.error}"
        return effects

    def try_run(self, account, contract, function, **args):
        return self.ledger.execute(
            Transaction(account.address, [Command(contract, function, args)])
        )

    def issue_and_list(
        self,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: int,
        expiry: int,
        price: int = 50,
        granularity: int = 60,
        min_bandwidth_kbps: int = 100,
    ) -> str:
        asset = self.run(
            self.seller, "asset", "issue",
            token=self.token, bandwidth_kbps=bandwidth_kbps, start=start,
            expiry=expiry, interface=interface, is_ingress=is_ingress,
            granularity=granularity, min_bandwidth_kbps=min_bandwidth_kbps,
        ).returns[0]["asset"]
        return self.run(
            self.seller, "market", "create_listing",
            marketplace=self.marketplace, asset=asset,
            price_micromist_per_unit=price,
        ).returns[0]["listing"]

    def buy(self, listing: str, start: int, expiry: int, bandwidth_kbps: int):
        return self.try_run(
            self.buyer, "market", "buy",
            marketplace=self.marketplace, listing=listing,
            start=start, expiry=expiry, bandwidth_kbps=bandwidth_kbps,
            payment=self.coin,
        )

    def cancel(self, listing: str):
        return self.try_run(
            self.seller, "market", "cancel_listing",
            marketplace=self.marketplace, listing=listing,
        )


@pytest.fixture()
def raw_market():
    return RawMarket()
