"""PurchasePlanner: flex valleys, mixed granularities, budget guards."""

import pytest

from tests.conftest import T0

from repro.admission import ScarcityPricer
from repro.clock import SimClock
from repro.controlplane import deploy_market, purchase_path
from repro.marketdata import (
    BudgetExceeded,
    IncompatibleGranularity,
    ListingNotFound,
    MarketIndexer,
    PathSpec,
    PurchasePlanner,
)
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing

MARKET_BW = 100_000  # kbps issued per interface direction
BASE_PRICE = 50
PEAK = (T0 + 600, T0 + 1200)


@pytest.fixture(scope="module")
def valley_world():
    """A scarcity-priced market whose peak window sold out and restocked.

    The crowd buys the whole peak at the base price and redeems (active
    calendars spike), then every AS restocks the peak at its
    scarcity-adjusted quote — so peak capacity exists again at a premium
    while the off-peak remainders still sell at the base price.
    """
    clock = SimClock(float(T0))
    topology = linear_topology(2)
    deployment = deploy_market(
        topology,
        clock=clock,
        asset_start=T0,
        asset_duration=7200,
        asset_bandwidth_kbps=MARKET_BW,
        price_micromist_per_unit=BASE_PRICE,
        interface_capacity_kbps=2 * MARKET_BW,
        pricer=ScarcityPricer(),
    )
    store = run_beaconing(topology, timestamp=T0)
    path = PathLookup(store).find_paths(
        topology.ases[1].isd_as, topology.ases[0].isd_as
    )[0]
    crossings = as_crossings(path)

    crowd = deployment.new_host(name="crowd")
    purchase_path(
        deployment, crowd, crossings, start=PEAK[0], expiry=PEAK[1],
        bandwidth_kbps=MARKET_BW,
    )
    for crossing in crossings:
        service = deployment.service(crossing.isd_as)
        for interface, is_ingress in (
            (crossing.ingress, True),
            (crossing.egress, False),
        ):
            restocked = service.issue_and_list(
                deployment.marketplace, interface, is_ingress,
                MARKET_BW, *PEAK, BASE_PRICE,
            )
            assert restocked.effects.ok
    return {"deployment": deployment, "crossings": crossings}


class TestFlexValley:
    def test_flex_quote_cheaper_than_zero_flex_on_loaded_interface(self, valley_world):
        """Acceptance regression: flex_start > 0 finds the valley."""
        deployment = valley_world["deployment"]
        crossings = valley_world["crossings"]
        rigid = deployment.planner.best(
            PathSpec.from_crossings(crossings, PEAK[0], PEAK[0] + 600, 2500)
        )
        flexible = deployment.planner.best(
            PathSpec.from_crossings(
                crossings, PEAK[0], PEAK[0] + 600, 2500, flex_start=1800
            )
        )
        assert rigid.offset == 0
        assert flexible.offset > 0  # slid out of the peak...
        assert flexible.price_mist < rigid.price_mist  # ...and pays less
        # The peak quote carries the scarcity premium; the valley quote is
        # the base price for the same rectangle.
        base = sum(
            listing.price_for(2500, flexible.start, flexible.expiry)
            for hop in flexible.hops
            for listing in (
                hop.ingress_candidate.listing, hop.egress_candidate.listing,
            )
        )
        assert flexible.price_mist == base

    def test_flex_purchase_pays_the_valley_price(self, valley_world):
        deployment = valley_world["deployment"]
        crossings = valley_world["crossings"]
        rigid_quote = deployment.planner.best(
            PathSpec.from_crossings(crossings, PEAK[0], PEAK[0] + 600, 2500)
        )
        host = deployment.new_host(name="flexible-buyer")
        outcome = purchase_path(
            deployment, host, crossings,
            start=PEAK[0], expiry=PEAK[0] + 600, bandwidth_kbps=2500,
            flex_start=1800,
        )
        assert outcome.price_mist < rigid_quote.price_mist
        assert outcome.price_mist == outcome.estimated_price_mist
        assert outcome.quote.offset > 0
        # The reservations really cover the shifted window.
        for reservation in outcome.reservations:
            assert reservation.resinfo.start <= outcome.quote.start
            assert reservation.resinfo.expiry >= outcome.quote.expiry

    def test_quotes_ranked_cheapest_first(self, valley_world):
        deployment = valley_world["deployment"]
        crossings = valley_world["crossings"]
        quotes = deployment.planner.quote(
            PathSpec.from_crossings(
                crossings, PEAK[0], PEAK[0] + 600, 2500, flex_start=1800
            )
        )
        assert len(quotes) >= 2
        prices = [quote.price_mist for quote in quotes]
        assert prices == sorted(prices)


class TestBudget:
    def test_planner_enforces_budget(self, valley_world):
        deployment = valley_world["deployment"]
        crossings = valley_world["crossings"]
        cheapest = deployment.planner.best(
            PathSpec.from_crossings(crossings, PEAK[0], PEAK[0] + 600, 2500)
        )
        with pytest.raises(BudgetExceeded):
            deployment.planner.best(
                PathSpec.from_crossings(
                    crossings, PEAK[0], PEAK[0] + 600, 2500,
                    budget_mist=cheapest.price_mist - 1,
                )
            )

    def test_buy_guard_refuses_before_submitting(self, valley_world):
        deployment = valley_world["deployment"]
        crossings = valley_world["crossings"]
        host = deployment.new_host(name="capped-buyer")
        plan = host.plan_path(
            deployment.marketplace,
            PathSpec.from_crossings(crossings, PEAK[0], PEAK[0] + 600, 2500),
        )
        checkpoint = deployment.ledger.checkpoint
        with pytest.raises(BudgetExceeded):
            host.atomic_buy_and_redeem(
                deployment.marketplace, plan,
                max_price_mist=plan.estimated_price_mist - 1,
            )
        # Refused client-side: nothing reached the ledger.
        assert deployment.ledger.checkpoint == checkpoint

    def test_guard_catches_scarcity_move_between_plan_and_buy(self):
        """The planned listing vanishes and a pricier replacement appears:
        the repriced guard must refuse before submitting."""
        from repro.ledger.transactions import Command, Transaction

        clock = SimClock(float(T0))
        topology = linear_topology(2)
        deployment = deploy_market(
            topology, clock=clock, asset_start=T0, asset_duration=7200
        )
        store = run_beaconing(topology, timestamp=T0)
        path = PathLookup(store).find_paths(
            topology.ases[1].isd_as, topology.ases[0].isd_as
        )[0]
        crossings = as_crossings(path)
        host = deployment.new_host(name="guarded-buyer")
        plan = host.plan_path(
            deployment.marketplace,
            PathSpec.from_crossings(crossings, T0 + 600, T0 + 1200, 4000),
        )
        budget = plan.estimated_price_mist

        # Between plan and buy, the seller yanks a planned listing and
        # relists the same asset at double the price.
        victim = plan.hops[0].ingress_listing
        seller = deployment.service(plan.requirements[0].isd_as)
        cancelled = seller.cancel_listing(deployment.marketplace, victim)
        assert cancelled.effects.ok
        relisted = seller.executor.submit(
            Transaction(
                sender=seller.account.address,
                commands=[
                    Command(
                        "market",
                        "create_listing",
                        {
                            "marketplace": deployment.marketplace,
                            "asset": cancelled.effects.returns[0]["asset"],
                            "price_micromist_per_unit": 100,  # was 50
                        },
                    )
                ],
            )
        )
        assert relisted.effects.ok

        checkpoint = deployment.ledger.checkpoint
        with pytest.raises(BudgetExceeded, match="repriced"):
            host.atomic_buy_and_redeem(
                deployment.marketplace, plan, max_price_mist=budget
            )
        assert deployment.ledger.checkpoint == checkpoint  # nothing submitted

    def test_guard_substitutes_same_price_replacement_and_buys(self):
        """The planned listing vanishes but an equally priced replacement
        exists: the guard substitutes it and the purchase SUCCEEDS instead
        of submitting a doomed transaction against the dead listing id."""
        from repro.ledger.transactions import Command, Transaction

        clock = SimClock(float(T0))
        topology = linear_topology(2)
        deployment = deploy_market(
            topology, clock=clock, asset_start=T0, asset_duration=7200
        )
        store = run_beaconing(topology, timestamp=T0)
        path = PathLookup(store).find_paths(
            topology.ases[1].isd_as, topology.ases[0].isd_as
        )[0]
        crossings = as_crossings(path)
        host = deployment.new_host(name="substituted-buyer")
        plan = host.plan_path(
            deployment.marketplace,
            PathSpec.from_crossings(crossings, T0 + 600, T0 + 1200, 4000),
        )
        victim = plan.hops[0].ingress_listing
        seller = deployment.service(plan.requirements[0].isd_as)
        cancelled = seller.cancel_listing(deployment.marketplace, victim)
        assert cancelled.effects.ok
        relisted = seller.executor.submit(
            Transaction(
                sender=seller.account.address,
                commands=[
                    Command(
                        "market",
                        "create_listing",
                        {
                            "marketplace": deployment.marketplace,
                            "asset": cancelled.effects.returns[0]["asset"],
                            "price_micromist_per_unit": 50,  # unchanged price
                        },
                    )
                ],
            )
        )
        assert relisted.effects.ok
        submitted = host.atomic_buy_and_redeem(
            deployment.marketplace, plan,
            max_price_mist=plan.estimated_price_mist,
        )
        assert submitted.effects.ok  # bought via the substituted listing

    def test_indexer_best_rejects_planner_only_fields(self, valley_world):
        from repro.marketdata import ListingQuery

        deployment = valley_world["deployment"]
        crossing = valley_world["crossings"][0]
        with pytest.raises(ValueError, match="zero-flex"):
            deployment.indexer.best(
                ListingQuery(
                    isd_as=crossing.isd_as, interface=crossing.ingress,
                    is_ingress=True, start=PEAK[0], expiry=PEAK[1],
                    bandwidth_kbps=1000, flex_start=600,
                )
            )

    def test_estimate_equals_paid_in_calm_market(self, valley_world):
        deployment = valley_world["deployment"]
        crossings = valley_world["crossings"]
        host = deployment.new_host(name="calm-buyer")
        outcome = purchase_path(
            deployment, host, crossings,
            start=T0 + 3600, expiry=T0 + 4200, bandwidth_kbps=1000,
            max_price_mist=10_000_000,
        )
        assert outcome.price_mist == outcome.estimated_price_mist


class TestMixedGranularity:
    def test_coarser_granule_alignment_succeeds(self, raw_market):
        """60s ingress + 120s egress resolve to the coarser shared window."""
        raw_market.issue_and_list(1, True, 10_000, 0, 3600, granularity=60)
        raw_market.issue_and_list(2, False, 10_000, 0, 3600, granularity=120)
        planner = PurchasePlanner(
            MarketIndexer(raw_market.ledger, raw_market.marketplace)
        )
        hop = planner.resolve_hop(raw_market.isd_as, 1, 2, 60, 120, 1000)
        assert (hop.start, hop.expiry) == (0, 120)  # aligned to the 120s granule
        assert hop.ingress_candidate.listing.granularity == 60
        assert hop.egress_candidate.listing.granularity == 120

    def test_irreconcilable_granularities_raise_dedicated_error(self, raw_market):
        """No shared granule inside validity -> IncompatibleGranularity."""
        raw_market.issue_and_list(1, True, 10_000, 0, 3600, granularity=60)
        raw_market.issue_and_list(2, False, 10_000, 0, 3500, granularity=3500)
        planner = PurchasePlanner(
            MarketIndexer(raw_market.ledger, raw_market.marketplace)
        )
        with pytest.raises(IncompatibleGranularity) as caught:
            planner.resolve_hop(raw_market.isd_as, 1, 2, 60, 120, 1000)
        message = str(caught.value)
        assert "granularity 60s" in message
        assert "granularity 3500s" in message
        # Still a ListingNotFound subclass: legacy handlers keep working.
        assert isinstance(caught.value, ListingNotFound)

    def test_coprime_granularities_resolve_via_lattice_intersection(self, raw_market):
        """60s vs 61s granules share the lcm lattice: the joint window is
        computed arithmetically, not by iterative growth (which would need
        ~61 rounds to reach [0, 3660))."""
        raw_market.issue_and_list(1, True, 10_000, 0, 43_920, granularity=60)
        raw_market.issue_and_list(2, False, 10_000, 0, 43_920, granularity=61)
        planner = PurchasePlanner(
            MarketIndexer(raw_market.ledger, raw_market.marketplace)
        )
        hop = planner.resolve_hop(raw_market.isd_as, 1, 2, 60, 120, 1000)
        assert (hop.start, hop.expiry) == (0, 3660)  # lcm(60, 61)

    def test_find_listing_shim_keeps_v1_exceptions(self, raw_market):
        """Degenerate requests raise ListingNotFound like v1, not ValueError."""
        import warnings

        from repro.controlplane.hostclient import HostClient
        from repro.ledger.accounts import Account
        from repro.ledger.committee import Committee
        from repro.ledger.executor import LedgerExecutor
        import random

        from repro.clock import SimClock

        raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        executor = LedgerExecutor(raw_market.ledger, Committee(seed=1), SimClock())
        host = HostClient(Account.generate(random.Random(5), "h"), executor)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ListingNotFound):
                host.find_listing(  # empty window
                    raw_market.marketplace, raw_market.isd_as, 1, True, 600, 600, 1000
                )

    def test_missing_inventory_still_plain_listing_not_found(self, raw_market):
        raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        planner = PurchasePlanner(
            MarketIndexer(raw_market.ledger, raw_market.marketplace)
        )
        with pytest.raises(ListingNotFound) as caught:
            planner.resolve_hop(raw_market.isd_as, 1, 2, 60, 120, 1000)
        assert not isinstance(caught.value, IncompatibleGranularity)
