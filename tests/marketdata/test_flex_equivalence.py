"""Breakpoint flex-offset enumeration == exhaustive step-1 scan.

``PurchasePlanner.quote`` enumerates only the offsets where some hop
resolution can change (lattice crossings of the involved listings plus
the flex endpooints).  These tests pin the two guarantees of that search:

* **equivalence** — on randomized markets the enumerated offsets produce
  exactly the quotes (same listings, windows, prices, representative
  offsets) of a linear scan trying every offset in ``[0, flex_start]``;
* **completeness regression** — the historical scan stepped by the
  finest involved granularity from offset 0, so it skipped windows of
  listings whose lattice anchor is shifted relative to the spec's start;
  the breakpoint enumeration must find the cheaper quote such a listing
  offers.
"""

from __future__ import annotations

import itertools
import random
from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import T0
from tests.marketdata.conftest import RawMarket

from repro.marketdata import (
    ListingNotFound,
    MarketIndexer,
    PathSpec,
    PurchasePlanner,
)

_market = None
_planner = None
_interfaces = itertools.count(10)


def _world():
    global _market, _planner
    if _market is None:
        _market = RawMarket(seed=7)
        _planner = PurchasePlanner(
            MarketIndexer(_market.ledger, _market.marketplace)
        )
    return _market, _planner


def _crossing(market, in_if, eg_if):
    return SimpleNamespace(isd_as=market.isd_as, ingress=in_if, egress=eg_if)


def _scan_reference(planner, spec, offsets):
    """Replicate ``quote()``'s loop over an explicit offset list: resolve
    every hop, dedup by signature keeping the first offset, rank."""
    rows = []
    seen = set()
    for offset in offsets:
        try:
            hops = tuple(
                planner.resolve_hop(
                    crossing.isd_as,
                    crossing.ingress,
                    crossing.egress,
                    spec.start + offset,
                    spec.expiry + offset,
                    spec.bandwidth_kbps,
                    sync=False,
                )
                for crossing in spec.crossings
            )
        except ListingNotFound:
            continue
        signature = tuple(
            (
                hop.ingress_candidate.listing.listing_id,
                hop.egress_candidate.listing.listing_id,
                hop.start,
                hop.expiry,
            )
            for hop in hops
        )
        if signature in seen:
            continue
        seen.add(signature)
        rows.append((sum(h.price_mist for h in hops), offset, signature))
    rows.sort(key=lambda row: (row[0], row[1]))
    return rows


def _quote_rows(quotes):
    return [
        (
            quote.price_mist,
            quote.offset,
            tuple(
                (
                    hop.ingress_candidate.listing.listing_id,
                    hop.egress_candidate.listing.listing_id,
                    hop.start,
                    hop.expiry,
                )
                for hop in quote.hops
            ),
        )
        for quote in quotes
    ]


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_breakpoint_enumeration_equals_step1_scan(seed):
    market, planner = _world()
    rng = random.Random(seed)
    in_if, eg_if = next(_interfaces), next(_interfaces)
    for interface, is_ingress in ((in_if, True), (eg_if, False)):
        for _ in range(rng.randint(1, 3)):
            g = rng.choice([30, 60, 90, 120])
            start = T0 + rng.randrange(g) + g * rng.randrange(-2, 1)
            market.issue_and_list(
                interface,
                is_ingress,
                bandwidth_kbps=10_000,
                start=start,
                expiry=start + g * rng.randint(4, 12),
                price=rng.choice([5, 40, 70, 100]),
                granularity=g,
            )
    spec = PathSpec.from_crossings(
        (_crossing(market, in_if, eg_if),),
        start=T0 + rng.randrange(0, 120),
        expiry=T0 + rng.randrange(0, 120) + rng.choice([240, 300, 360]),
        bandwidth_kbps=1000,
        flex_start=rng.choice([0, 45, 90, 150]),
    )
    planner.indexer.sync()
    reference = _scan_reference(planner, spec, range(spec.flex_start + 1))
    try:
        quotes = planner.quote(spec)
    except ListingNotFound:
        assert reference == []
        return
    assert _quote_rows(quotes) == reference


def test_breakpoints_subsume_old_finest_granularity_scan():
    """Offsets {0, g, 2g, ...} of the old scan are all enumerated (the
    old scan's candidates are a subset — the new search can only add)."""
    market, planner = _world()
    in_if, eg_if = next(_interfaces), next(_interfaces)
    for interface, is_ingress in ((in_if, True), (eg_if, False)):
        market.issue_and_list(
            interface, is_ingress, 10_000, T0, T0 + 1200, 50, granularity=60
        )
    spec = PathSpec.from_crossings(
        (_crossing(market, in_if, eg_if),),
        start=T0,
        expiry=T0 + 300,
        bandwidth_kbps=1000,
        flex_start=180,
    )
    planner.indexer.sync()
    offsets = set(planner._flex_offsets(spec))
    assert {0, 60, 120, 180} <= offsets


def test_shifted_anchor_listing_found_only_by_breakpoints():
    """The completeness regression the breakpoint search fixes.

    Base listings are anchored at the spec start with g=60 and price 100;
    a much cheaper pair lives on a lattice anchored 30 seconds later, its
    validity exactly one aligned window wide.  The old scan (finest
    granularity steps: offsets 0, 60, 120) can never align to the cheap
    pair inside its validity; the breakpoint enumeration lands on offset
    30 and must return the cheap quote first.
    """
    market, planner = _world()
    in_if, eg_if = next(_interfaces), next(_interfaces)
    for interface, is_ingress in ((in_if, True), (eg_if, False)):
        market.issue_and_list(
            interface, is_ingress, 10_000, T0, T0 + 900, 100, granularity=60
        )
        market.issue_and_list(
            interface, is_ingress, 10_000, T0 + 30, T0 + 630, 1, granularity=60
        )
    spec = PathSpec.from_crossings(
        (_crossing(market, in_if, eg_if),),
        start=T0,
        expiry=T0 + 600,
        bandwidth_kbps=1000,
        flex_start=120,
    )
    planner.indexer.sync()
    old_offsets = [0, 60, 120]  # finest granularity, anchored at offset 0
    old_rows = _scan_reference(planner, spec, old_offsets)
    assert old_rows, "old scan must still find the expensive base pair"
    old_best_price = old_rows[0][0]

    quotes = planner.quote(spec)
    assert 30 in planner._flex_offsets(spec)
    best = quotes[0]
    assert best.offset == 30
    assert best.price_mist < old_best_price
    cheap_ids = {
        hop.ingress_candidate.listing.listing_id for hop in best.hops
    } | {hop.egress_candidate.listing.listing_id for hop in best.hops}
    listings = {
        listing.listing_id: listing for listing in planner.indexer.listings()
    }
    assert all(listings[lid].start == T0 + 30 for lid in cheap_ids)
