"""Property: the incremental index IS the full-ledger scan.

Hypothesis drives arbitrary interleavings of list / buy (all split
shapes) / cancel / seller-side asset splits / relists — with the indexer
syncing incrementally after every step — and checks that the index always
answers exactly what a naive rescan of the object store would: the same
live listing set, and for probe rectangles the same cheapest listing,
price, and aligned window.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from tests.marketdata.conftest import RawMarket

from repro.contracts.market import LISTING_TYPE
from repro.marketdata import ListingQuery, MarketIndexer, naive_best_listing
from repro.marketdata.naive import iter_listings
from repro.scion.addresses import IsdAs

AS19 = IsdAs(1, 9)
INTERFACES = ((1, True), (1, False), (2, True))
GRANULARITIES = (30, 60, 120)
HORIZON = 7200
MIN_BW = 100


class IndexerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.market = RawMarket(seed=7)
        self.indexer = MarketIndexer(self.market.ledger, self.market.marketplace)
        self.rng = random.Random(1234)

    # -- helpers ---------------------------------------------------------------

    def _listings(self):
        return sorted(
            (
                obj
                for obj in self.market.ledger.objects.values()
                if obj.type_tag == LISTING_TYPE
            ),
            key=lambda obj: obj.object_id,
        )

    def _pick_listing(self, index: int):
        listings = self._listings()
        if not listings:
            return None
        return listings[index % len(listings)]

    # -- rules -----------------------------------------------------------------

    @rule(
        slot=st.integers(0, 40),
        slots=st.integers(1, 30),
        granularity=st.sampled_from(GRANULARITIES),
        interface=st.sampled_from(INTERFACES),
        bw=st.sampled_from([1_000, 10_000, 50_000]),
        price=st.integers(10, 200),
    )
    def list_asset(self, slot, slots, granularity, interface, bw, price):
        start = slot * granularity
        expiry = min(start + slots * granularity, HORIZON)
        if expiry <= start:
            return
        self.market.issue_and_list(
            interface[0], interface[1], bw, start, expiry,
            price=price, granularity=granularity,
        )

    @rule(
        pick=st.integers(0, 1_000_000),
        start_frac=st.floats(0.0, 1.0),
        slots=st.integers(1, 20),
        bw_frac=st.floats(0.1, 1.0),
    )
    def buy_rectangle(self, pick, start_frac, slots, bw_frac):
        listing = self._pick_listing(pick)
        if listing is None:
            return
        asset = self.market.ledger.objects.get(listing.payload["asset"])
        if asset is None:
            return
        payload = asset.payload
        granularity = payload["granularity"]
        total_slots = (payload["expiry"] - payload["start"]) // granularity
        offset = int(start_frac * (total_slots - 1)) if total_slots > 1 else 0
        start = payload["start"] + offset * granularity
        expiry = min(start + slots * granularity, payload["expiry"])
        bw = max(MIN_BW, int(payload["bandwidth_kbps"] * bw_frac) // 100 * 100)
        remainder = payload["bandwidth_kbps"] - bw
        if bw > payload["bandwidth_kbps"] or 0 < remainder < MIN_BW:
            return
        # The transaction may still abort (e.g. emptied window); aborts
        # emit no events, so both sides of the comparison are unaffected.
        self.market.buy(listing.object_id, start, expiry, bw)

    @rule(pick=st.integers(0, 1_000_000))
    def cancel_listing(self, pick):
        listing = self._pick_listing(pick)
        if listing is None:
            return
        self.market.cancel(listing.object_id)

    @rule(pick=st.integers(0, 1_000_000), price=st.integers(10, 300))
    def cancel_split_and_relist(self, pick, price):
        """Seller takes a listing back, splits the asset, relists the parts."""
        listing = self._pick_listing(pick)
        if listing is None:
            return
        cancelled = self.market.cancel(listing.object_id)
        if not cancelled.ok:
            return
        asset_id = cancelled.returns[0]["asset"]
        asset = self.market.ledger.objects[asset_id]
        payload = asset.payload
        granularity = payload["granularity"]
        slots = (payload["expiry"] - payload["start"]) // granularity
        pieces = [asset_id]
        if slots >= 2:
            split = self.market.try_run(
                self.market.seller, "asset", "split_time",
                asset=asset_id,
                split_at=payload["start"] + (slots // 2) * granularity,
            )
            if split.ok:
                pieces.append(split.returns[0]["second"])
        for piece in pieces:
            self.market.run(
                self.market.seller, "market", "create_listing",
                marketplace=self.market.marketplace, asset=piece,
                price_micromist_per_unit=price,
            )

    @rule()
    def sync_now(self):
        """Extra mid-sequence syncs: incremental application at odd points."""
        self.indexer.sync()

    # -- the property ------------------------------------------------------------

    @invariant()
    def index_matches_full_rescan(self):
        if not hasattr(self, "market"):
            return
        self.indexer.sync()
        indexed = {
            record.listing_id: record for record in self.indexer.listings()
        }
        scanned = {
            record.listing_id: record
            for record in iter_listings(self.market.ledger, self.market.marketplace)
        }
        assert indexed == scanned
        for interface, is_ingress in INTERFACES:
            for _ in range(3):
                start = self.rng.randrange(0, HORIZON, 30)
                expiry = start + self.rng.randrange(30, 3600, 30)
                probe = ListingQuery(
                    isd_as=AS19, interface=interface, is_ingress=is_ingress,
                    start=start, expiry=expiry,
                    bandwidth_kbps=self.rng.choice([MIN_BW, 1_000, 10_000, 50_000]),
                    exact_window=self.rng.random() < 0.2,
                )
                fast = self.indexer.best(probe)
                slow = naive_best_listing(
                    self.market.ledger, self.market.marketplace, probe
                )
                if slow is None:
                    assert fast is None, probe
                else:
                    assert fast is not None, probe
                    assert fast.listing.listing_id == slow.listing.listing_id, probe
                    assert (fast.price_mist, fast.start, fast.expiry) == (
                        slow.price_mist, slow.start, slow.expiry,
                    ), probe


IndexerMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=14, deadline=None
)
TestIndexerMatchesNaive = IndexerMachine.TestCase
