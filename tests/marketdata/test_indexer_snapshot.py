"""Property: checkpoint + event tail == genesis replay.

A :class:`MarketIndexer` is a pure function of the event prefix it has
applied, so restoring a snapshot taken at position P and then consuming
the tail (by pull ``sync()`` or by bus ``deliver()``) must land on
exactly the state a fresh indexer reaches by replaying all events from
genesis.  Hypothesis drives real market activity (list / buy / cancel /
relist) with checkpoints and bus attaches taken at arbitrary cut points;
canonical ``snapshot()`` equality is the oracle.
"""

import random

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from tests.marketdata.conftest import RawMarket

from repro.contracts.market import LISTING_TYPE
from repro.marketdata import EventBus, MarketIndexer, SharedMarketIndex

INTERFACES = ((1, True), (1, False), (2, True))
GRANULARITIES = (30, 60, 120)
HORIZON = 7200
MIN_BW = 100


class SnapshotRoundTripMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        self.market = RawMarket(seed=17)
        self.primary = MarketIndexer(self.market.ledger, self.market.marketplace)
        self.shared = SharedMarketIndex(self.primary, checkpoint_every=4)
        self.followers: list[MarketIndexer] = []  # bus-fed + pull-synced clones
        self.rng = random.Random(71)

    def _listings(self):
        return sorted(
            (
                obj
                for obj in self.market.ledger.objects.values()
                if obj.type_tag == LISTING_TYPE
            ),
            key=lambda obj: obj.object_id,
        )

    # -- market activity ---------------------------------------------------------

    @rule(
        slot=st.integers(0, 40),
        slots=st.integers(1, 30),
        granularity=st.sampled_from(GRANULARITIES),
        interface=st.sampled_from(INTERFACES),
        bw=st.sampled_from([1_000, 10_000, 50_000]),
        price=st.integers(10, 200),
    )
    def list_asset(self, slot, slots, granularity, interface, bw, price):
        start = slot * granularity
        expiry = min(start + slots * granularity, HORIZON)
        if expiry <= start:
            return
        self.market.issue_and_list(
            interface[0], interface[1], bw, start, expiry,
            price=price, granularity=granularity,
        )

    @rule(pick=st.integers(0, 1_000_000), slots=st.integers(1, 20))
    def buy_rectangle(self, pick, slots):
        listings = self._listings()
        if not listings:
            return
        listing = listings[pick % len(listings)]
        asset = self.market.ledger.objects.get(listing.payload["asset"])
        if asset is None:
            return
        payload = asset.payload
        start = payload["start"]
        expiry = min(start + slots * payload["granularity"], payload["expiry"])
        if expiry <= start:
            return
        self.market.buy(listing.object_id, start, expiry, payload["bandwidth_kbps"])

    @rule(pick=st.integers(0, 1_000_000))
    def cancel_listing(self, pick):
        listings = self._listings()
        if not listings:
            return
        self.market.cancel(listings[pick % len(listings)].object_id)

    # -- checkpoint / attach at arbitrary cut points -----------------------------

    @rule()
    def snapshot_restore_round_trip(self):
        """snapshot -> restore -> snapshot is the identity, mid-stream."""
        self.primary.sync()
        checkpoint = self.primary.snapshot()
        clone = MarketIndexer.from_snapshot(self.market.ledger, checkpoint)
        assert clone.snapshot() == checkpoint
        self.followers.append(clone)  # catches the tail via pull sync

    @rule()
    def attach_through_the_bus(self):
        """SharedMarketIndex.attach clones the checkpoint, bus feeds the tail."""
        self.followers.append(self.shared.attach())

    @rule()
    def pump_the_bus(self):
        self.shared.pump()

    # -- the property ------------------------------------------------------------

    @invariant()
    def every_view_equals_genesis_replay(self):
        if not hasattr(self, "market"):
            return
        genesis = MarketIndexer(self.market.ledger, self.market.marketplace)
        genesis.sync()
        truth = genesis.snapshot()
        self.shared.pump()  # push path for the primary + bus-fed followers
        assert self.primary.snapshot() == truth
        for follower in self.followers:
            follower.sync()  # pull path composes with any pushes already seen
            assert follower.snapshot() == truth


SnapshotRoundTripMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=14, deadline=None
)
TestSnapshotRoundTrip = SnapshotRoundTripMachine.TestCase


# -- deterministic edges ------------------------------------------------------


def test_restore_rejects_foreign_marketplace():
    market = RawMarket(seed=3)
    indexer = MarketIndexer(market.ledger, market.marketplace)
    snapshot = indexer.snapshot()
    snapshot["marketplace"] = "someone-else"
    with pytest.raises(ValueError):
        indexer.restore(snapshot)


def test_attach_never_replays_from_genesis():
    market = RawMarket(seed=5)
    for slot in range(6):
        market.issue_and_list(1, True, 10_000, slot * 60, (slot + 10) * 60)
    primary = MarketIndexer(market.ledger, market.marketplace)
    shared = SharedMarketIndex(primary, checkpoint_every=1024)
    clone = shared.attach()
    # The clone starts at the checkpoint cursor with zero events applied
    # itself — it inherited the listings without touching ledger history.
    assert clone.position == primary.position
    assert clone.count == primary.count == 6
    assert clone.events_applied == primary.events_applied
    # New activity reaches it through one pump.
    market.issue_and_list(2, True, 10_000, 0, 600)
    assert shared.pump() > 0
    assert clone.count == primary.count == 7


def test_stale_checkpoints_refresh_on_attach():
    market = RawMarket(seed=6)
    primary = MarketIndexer(market.ledger, market.marketplace)
    shared = SharedMarketIndex(primary, checkpoint_every=2)
    first = shared.attach()
    for slot in range(3):  # more than checkpoint_every new events
        market.issue_and_list(1, True, 10_000, slot * 60, (slot + 5) * 60)
    second = shared.attach()
    assert second.count == 3  # fresh checkpoint folded the new listings in
    shared.pump()
    assert first.count == second.count == 3


def test_bus_unsubscribe_stops_delivery_but_sync_still_works():
    market = RawMarket(seed=8)
    bus = EventBus(market.ledger)
    indexer = MarketIndexer(market.ledger, market.marketplace)
    bus.subscribe(indexer)
    market.issue_and_list(1, True, 10_000, 0, 600)
    assert bus.pump() > 0
    assert indexer.count == 1
    bus.unsubscribe(indexer)
    market.issue_and_list(1, True, 10_000, 600, 1200)
    assert bus.pump() == 0
    assert indexer.count == 1
    indexer.sync()  # detached indexers fall back to pulling
    assert indexer.count == 2
