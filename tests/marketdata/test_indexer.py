"""MarketIndexer lifecycle: Listed/Sold/Delisted/Relisted, incrementality."""

import numpy as np

from repro.marketdata import ListingQuery, MarketIndexer, naive_best_listing
from repro.marketdata.naive import iter_listings
from repro.scion.addresses import IsdAs

AS19 = IsdAs(1, 9)


def query(start, expiry, bw, interface=1, is_ingress=True, exact=False):
    return ListingQuery(
        isd_as=AS19, interface=interface, is_ingress=is_ingress,
        start=start, expiry=expiry, bandwidth_kbps=bw, exact_window=exact,
    )


def assert_matches_naive(indexer, market, probes):
    """Indexer and full-ledger scan must agree listing-for-listing."""
    indexer.sync()
    indexed = {record.listing_id for record in indexer.listings()}
    scanned = {
        record.listing_id for record in iter_listings(market.ledger, market.marketplace)
    }
    assert indexed == scanned
    for probe in probes:
        fast = indexer.best(probe)
        slow = naive_best_listing(market.ledger, market.marketplace, probe)
        if slow is None:
            assert fast is None
        else:
            assert fast is not None
            assert fast.listing.listing_id == slow.listing.listing_id
            assert (fast.price_mist, fast.start, fast.expiry) == (
                slow.price_mist, slow.start, slow.expiry,
            )


class TestLifecycle:
    def test_listed_assets_become_queryable(self, raw_market):
        listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        indexer.sync()
        found = indexer.best(query(60, 120, 4000))
        assert found is not None
        assert found.listing.listing_id == listing
        assert (found.start, found.expiry) == (60, 120)
        # Price mirrors the contract's ceil(kbps-seconds * unit / 1e6).
        assert found.price_mist == -(-4000 * 60 * 50 // 1_000_000)

    def test_sold_shrinks_the_surviving_listing(self, raw_market):
        listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        indexer.sync()
        # Tail rectangle: the head remainder stays with the original
        # listing, whose asset the splits mutated down to [0, 600).
        assert raw_market.buy(listing, 600, 3600, 10_000).ok
        indexer.sync()
        record = indexer.listing(listing)
        assert record is not None
        assert (record.start, record.expiry) == (0, 600)
        assert indexer.best(query(600, 1200, 1000)) is None
        assert_matches_naive(
            indexer, raw_market, [query(0, 600, 1000), query(600, 1200, 1000)]
        )

    def test_full_purchase_closes_the_listing(self, raw_market):
        listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        indexer.sync()
        assert raw_market.buy(listing, 0, 3600, 10_000).ok
        indexer.sync()
        assert indexer.listing(listing) is None
        assert indexer.count == 0

    def test_mid_rectangle_buy_relists_remainders(self, raw_market):
        listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        indexer.sync()
        # Middle rectangle: head stays with the listing, tail and bandwidth
        # remainders come back as fresh Relisted listings.
        assert raw_market.buy(listing, 600, 1200, 4000).ok
        indexer.sync()
        assert indexer.count == 3
        assert_matches_naive(
            indexer,
            raw_market,
            [
                query(0, 600, 10_000),
                query(600, 1200, 4000),
                query(600, 1200, 6000),
                query(1200, 3600, 10_000),
                query(600, 1200, 10_000),
            ],
        )

    def test_delisted_drops_the_listing(self, raw_market):
        listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        indexer.sync()
        assert indexer.count == 1
        assert raw_market.cancel(listing).ok
        indexer.sync()
        assert indexer.count == 0
        assert indexer.best(query(0, 600, 1000)) is None

    def test_other_marketplace_events_ignored(self, raw_market):
        other = raw_market.run(
            raw_market.seller, "market", "create_marketplace"
        ).returns[0]["marketplace"]
        raw_market.run(
            raw_market.seller, "market", "register_seller", marketplace=other
        )
        raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, other)
        indexer.sync()
        assert indexer.count == 0


class TestIncrementality:
    def test_sync_applies_only_new_events(self, raw_market):
        raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        first = indexer.sync()
        assert first >= 1
        assert indexer.sync() == 0  # cursor advanced; nothing to reapply
        raw_market.issue_and_list(2, False, 5_000, 0, 3600)
        assert indexer.sync() == 1
        assert indexer.count == 2

    def test_two_indexers_agree_regardless_of_sync_schedule(self, raw_market):
        eager = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        eager.sync()
        assert raw_market.buy(listing, 600, 1200, 4000).ok
        eager.sync()
        assert raw_market.buy(listing, 0, 300, 10_000).ok
        eager.sync()
        late = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        late.sync()  # replays everything in one batch
        assert {r.listing_id for r in eager.listings()} == {
            r.listing_id for r in late.listings()
        }
        for fast, slow in zip(
            sorted(eager.listings(), key=lambda r: r.listing_id),
            sorted(late.listings(), key=lambda r: r.listing_id),
        ):
            assert fast == slow

    def test_replayed_listed_event_is_idempotent(self, raw_market):
        # Regression: an at-least-once event feed re-delivering Listed for
        # a live listing left a duplicate (start, id) order entry, so
        # candidates() returned the same listing twice — and the dangling
        # entry crashed the compile after the listing was later removed.
        listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        indexer.sync()
        listed = next(
            event
            for event in raw_market.ledger.events
            if event.event_type == "Listed"
            and event.payload["listing"] == listing
        )
        assert indexer._apply(listed)  # replay the same event
        found = indexer.candidates(query(60, 120, 4000), limit=10)
        assert [candidate.listing.listing_id for candidate in found] == [listing]
        assert raw_market.cancel(listing).ok
        indexer.sync()
        assert indexer.candidates(query(60, 120, 4000), limit=10) == []

    def test_unknown_sold_and_delisted_do_not_count_as_applied(self, raw_market):
        # Regression: an indexer attached mid-stream counted Sold/Delisted
        # of never-tracked listings as applied, inflating events_applied.
        sold_listing = raw_market.issue_and_list(1, True, 10_000, 0, 3600)
        cancelled_listing = raw_market.issue_and_list(2, True, 10_000, 0, 3600)
        assert raw_market.buy(sold_listing, 0, 3600, 10_000).ok  # closes it
        assert raw_market.cancel(cancelled_listing).ok
        late = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        # Attach after both listings existed: skip straight to the first
        # Sold, so only Sold/Delisted of unknown listings remain.
        late._position = next(
            position
            for position, event in enumerate(raw_market.ledger.events)
            if event.event_type == "Sold"
        )
        assert late.sync() == 0
        assert late.events_applied == 0
        assert late.count == 0


class TestPriceCurve:
    def test_curve_shows_cheap_and_expensive_windows(self, raw_market):
        raw_market.issue_and_list(1, True, 10_000, 0, 1800, price=100)
        raw_market.issue_and_list(1, True, 10_000, 1800, 3600, price=25)
        indexer = MarketIndexer(raw_market.ledger, raw_market.marketplace)
        times = [0, 600, 1800, 2400, 3600]
        curve = indexer.price_curve(AS19, 1, True, 1000, 600, times)
        assert curve[0] == -(-1000 * 600 * 100 // 1_000_000)
        assert curve[2] == -(-1000 * 600 * 25 // 1_000_000)
        assert curve[2] < curve[0]  # the valley is visible
        assert np.isinf(curve[4])  # beyond every asset: uncovered
