"""Reclaimed-listing provenance through the indexer and its snapshots."""

from tests.marketdata.conftest import RawMarket

from repro.marketdata import MarketIndexer

PROVENANCE = {
    "res_id": 7,
    "original_holder": "holder-address",
    "reclaimed_kbps": 4_000,
    "observed_kbps": 12.5,
}


def _reclaimed_listing(market: RawMarket, price: int = 50) -> str:
    asset = market.run(
        market.seller, "asset", "issue",
        token=market.token, bandwidth_kbps=4_000, start=0, expiry=600,
        interface=1, is_ingress=True, granularity=60, min_bandwidth_kbps=100,
    ).returns[0]["asset"]
    return market.run(
        market.seller, "market", "create_listing",
        marketplace=market.marketplace, asset=asset,
        price_micromist_per_unit=price, provenance=PROVENANCE,
    ).returns[0]["listing"]


def test_reclaimed_event_annotates_the_listing():
    market = RawMarket(seed=5)
    plain = market.issue_and_list(2, True, 1_000, 0, 600)
    reclaimed = _reclaimed_listing(market)
    indexer = MarketIndexer(market.ledger, market.marketplace)
    indexer.sync()
    assert indexer.reclaimed_seen == 1
    assert indexer.provenance(reclaimed) == PROVENANCE
    assert indexer.provenance(plain) is None
    # Both are ordinary listings to every query path.
    assert indexer.count == 2


def test_provenance_survives_snapshot_roundtrip():
    market = RawMarket(seed=6)
    reclaimed = _reclaimed_listing(market)
    indexer = MarketIndexer(market.ledger, market.marketplace)
    indexer.sync()
    restored = MarketIndexer.from_snapshot(market.ledger, indexer.snapshot())
    assert restored.reclaimed_seen == 1
    assert restored.provenance(reclaimed) == PROVENANCE
    assert restored.snapshot() == indexer.snapshot()


def test_old_snapshots_without_provenance_still_restore():
    market = RawMarket(seed=7)
    market.issue_and_list(1, True, 1_000, 0, 600)
    indexer = MarketIndexer(market.ledger, market.marketplace)
    indexer.sync()
    snapshot = indexer.snapshot()
    del snapshot["provenance"]
    del snapshot["reclaimed_seen"]
    restored = MarketIndexer.from_snapshot(market.ledger, snapshot)
    assert restored.reclaimed_seen == 0
    assert restored.count == 1


def test_provenance_is_pruned_when_the_listing_closes():
    market = RawMarket(seed=8)
    reclaimed = _reclaimed_listing(market)
    indexer = MarketIndexer(market.ledger, market.marketplace)
    indexer.sync()
    # Buy the whole rectangle: the listing closes and the annotation goes.
    effects = market.buy(reclaimed, start=0, expiry=600, bandwidth_kbps=4_000)
    assert effects.ok, effects.error
    indexer.sync()
    assert indexer.listing(reclaimed) is None
    assert indexer.provenance(reclaimed) is None
    assert "provenance" in indexer.snapshot()
    assert indexer.snapshot()["provenance"] == {}
