"""Ledger substrate: objects, gas, atomic execution, committee latencies."""

import random

import pytest

from repro.contracts.coin import CoinContract, coin_balance
from repro.ledger.accounts import Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.committee import Committee
from repro.ledger.executor import LedgerExecutor
from repro.ledger.gas import GasMeter, GasSummary, computation_bucket
from repro.ledger.objects import LedgerObject, Ownership, canonical_size
from repro.ledger.runtime import Contract, ContractAbort
from repro.ledger.transactions import Command, Result, Transaction, resolve_args


class TestCanonicalSize:
    def test_scalars(self):
        assert canonical_size(None) == 1
        assert canonical_size(True) == 1
        assert canonical_size(7) == 8
        assert canonical_size(1.5) == 8
        assert canonical_size("ab") == 3
        assert canonical_size(b"abc") == 4

    def test_containers(self):
        assert canonical_size([1, 2]) == 1 + 16
        assert canonical_size({"a": 1}) == 1 + 2 + 8

    def test_unserializable_rejected(self):
        with pytest.raises(TypeError):
            canonical_size(object())

    def test_object_size_includes_overhead(self):
        obj = LedgerObject("x" * 64, "t::T", Ownership.OWNED, "owner", {"a": 1})
        assert obj.serialized_size() == 105 + canonical_size({"a": 1})


class TestGas:
    def test_bucket_rounding(self):
        assert computation_bucket(0) == 1000
        assert computation_bucket(1000) == 1000
        assert computation_bucket(1001) == 2000
        assert computation_bucket(2000) == 2000
        assert computation_bucket(2001) == 4000
        assert computation_bucket(3999) == 4000

    def test_summary_arithmetic(self):
        summary = GasSummary(computation_units=1000, storage_bytes=1000, rebate_bytes=500)
        assert summary.computation_cost == pytest.approx(1000 * 7.5e-7)
        assert summary.storage_cost == pytest.approx(1000 * 7.6e-6)
        assert summary.storage_rebate == pytest.approx(500 * 7.6e-6 * 0.99)
        assert summary.total_sui == pytest.approx(
            summary.computation_cost + summary.storage_cost - summary.storage_rebate
        )

    def test_delete_heavy_transaction_nets_negative(self):
        meter = GasMeter()
        meter.charge_call()
        meter.charge_delete(5000)
        assert meter.summary().total_sui < 0

    def test_mutation_charges_new_and_rebates_old(self):
        meter = GasMeter()
        meter.charge_mutate(old_size=300, new_size=400)
        summary = meter.summary()
        assert summary.storage_bytes == 400
        assert summary.rebate_bytes == 300


class _Counter(Contract):
    name = "counter"

    def create(self, ctx):
        obj = ctx.create_object("counter::C", {"value": 0})
        return {"id": obj.object_id}

    def increment(self, ctx, target: str):
        obj = ctx.take_owned(target, "counter::C")
        obj.payload["value"] += 1
        ctx.mutate(obj)
        ctx.emit("Incremented", {"value": obj.payload["value"]})
        return {"value": obj.payload["value"]}

    def explode(self, ctx, target: str):
        obj = ctx.take_owned(target, "counter::C")
        obj.payload["value"] += 100
        ctx.mutate(obj)
        raise ContractAbort("boom")


@pytest.fixture
def ledger():
    chain = Ledger()
    chain.register_contract(_Counter())
    chain.register_contract(CoinContract())
    return chain


def sender():
    return Account.generate(random.Random(0), "t").address


class TestAtomicity:
    def test_commit_on_success(self, ledger):
        addr = sender()
        effects = ledger.execute(
            Transaction(addr, [Command("counter", "create", {})])
        )
        assert effects.ok
        counter_id = effects.returns[0]["id"]
        assert ledger.get_object(counter_id).payload["value"] == 0

    def test_rollback_on_abort(self, ledger):
        addr = sender()
        created = ledger.execute(Transaction(addr, [Command("counter", "create", {})]))
        counter_id = created.returns[0]["id"]
        effects = ledger.execute(
            Transaction(
                addr,
                [
                    Command("counter", "increment", {"target": counter_id}),
                    Command("counter", "explode", {"target": counter_id}),
                ],
            )
        )
        assert not effects.ok
        assert "boom" in effects.error
        # The increment in the same transaction was rolled back too.
        assert ledger.get_object(counter_id).payload["value"] == 0

    def test_result_chaining(self, ledger):
        addr = sender()
        effects = ledger.execute(
            Transaction(
                addr,
                [
                    Command("counter", "create", {}),
                    Command("counter", "increment", {"target": Result(0, "id")}),
                ],
            )
        )
        assert effects.ok
        assert effects.returns[1]["value"] == 1

    def test_ownership_enforced(self, ledger):
        owner = sender()
        created = ledger.execute(Transaction(owner, [Command("counter", "create", {})]))
        counter_id = created.returns[0]["id"]
        thief = Account.generate(random.Random(9), "thief").address
        effects = ledger.execute(
            Transaction(thief, [Command("counter", "increment", {"target": counter_id})])
        )
        assert not effects.ok
        assert "not owned by" in effects.error

    def test_events_only_on_success(self, ledger):
        addr = sender()
        created = ledger.execute(Transaction(addr, [Command("counter", "create", {})]))
        counter_id = created.returns[0]["id"]
        before = len(ledger.events)
        ledger.execute(Transaction(addr, [Command("counter", "explode", {"target": counter_id})]))
        assert len(ledger.events) == before
        ledger.execute(Transaction(addr, [Command("counter", "increment", {"target": counter_id})]))
        assert len(ledger.events) == before + 1

    def test_unknown_contract_aborts(self, ledger):
        effects = ledger.execute(Transaction(sender(), [Command("nope", "f", {})]))
        assert not effects.ok

    def test_private_function_rejected(self, ledger):
        effects = ledger.execute(Transaction(sender(), [Command("counter", "_secret", {})]))
        assert not effects.ok

    def test_version_bumps_on_mutation(self, ledger):
        addr = sender()
        created = ledger.execute(Transaction(addr, [Command("counter", "create", {})]))
        counter_id = created.returns[0]["id"]
        v1 = ledger.get_object(counter_id).version
        ledger.execute(Transaction(addr, [Command("counter", "increment", {"target": counter_id})]))
        assert ledger.get_object(counter_id).version == v1 + 1


class TestCoins:
    def test_mint_split_merge(self, ledger):
        addr = sender()
        minted = ledger.execute(
            Transaction(addr, [Command("coin", "mint", {"amount": sui_to_mist(1)})])
        )
        coin = minted.returns[0]["coin"]
        split = ledger.execute(
            Transaction(addr, [Command("coin", "split", {"coin": coin, "amount": 1000})])
        )
        piece = split.returns[0]["coin"]
        assert coin_balance(ledger, addr) == sui_to_mist(1)
        merged = ledger.execute(
            Transaction(addr, [Command("coin", "merge", {"coin": coin, "other": piece})])
        )
        assert merged.ok
        assert coin_balance(ledger, addr) == sui_to_mist(1)

    def test_transfer_moves_ownership(self, ledger):
        addr = sender()
        other = Account.generate(random.Random(5), "o").address
        minted = ledger.execute(
            Transaction(addr, [Command("coin", "mint", {"amount": 500})])
        )
        coin = minted.returns[0]["coin"]
        ledger.execute(
            Transaction(addr, [Command("coin", "transfer", {"coin": coin, "recipient": other})])
        )
        assert coin_balance(ledger, other) == 500
        assert coin_balance(ledger, addr) == 0


class TestResolveArgs:
    def test_nested_resolution(self):
        returns = [{"id": "abc"}]
        args = {"plain": 1, "nested": {"deep": Result(0, "id")}, "many": [Result(0, "id")]}
        resolved = resolve_args(args, returns)
        assert resolved["nested"]["deep"] == "abc"
        assert resolved["many"] == ["abc"]

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError):
            resolve_args({"x": Result(3, "id")}, [{}])

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError):
            resolve_args({"x": Result(0, "nope")}, [{"id": 1}])


class TestCommittee:
    def test_consensus_slower_than_fast_path(self):
        committee = Committee(num_validators=50, seed=1)
        fast = [committee.fast_path_latency() for _ in range(200)]
        consensus = [committee.consensus_latency() for _ in range(200)]
        assert sum(fast) / len(fast) < sum(consensus) / len(consensus)

    def test_fast_path_subsecond_median(self):
        committee = Committee(num_validators=100, seed=2)
        fast = sorted(committee.fast_path_latency() for _ in range(200))
        assert fast[100] < 1.0

    def test_quorum_is_two_thirds(self):
        assert Committee(num_validators=100).quorum == 67

    def test_too_small_committee_rejected(self):
        with pytest.raises(ValueError):
            Committee(num_validators=3)


class TestExecutor:
    def test_fast_path_classification(self, ledger):
        executor = LedgerExecutor(ledger, Committee(seed=3))
        addr = sender()
        submitted = executor.submit(
            Transaction(addr, [Command("coin", "mint", {"amount": 100})])
        )
        assert submitted.used_fast_path  # coins are owned objects
        assert submitted.latency > 0
