"""AES-128 against FIPS-197 / SP 800-38A vectors plus structural properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES128, SBOX, INV_SBOX, expand_key, xor_bytes


class TestKnownVectors:
    def test_fips197_appendix_c(self):
        cipher = AES128(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        ciphertext = cipher.encrypt_block(bytes.fromhex("00112233445566778899aabbccddeeff"))
        assert ciphertext.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_sp800_38a_ecb_vectors(self):
        cipher = AES128(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        vectors = [
            ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
            ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
            ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
        ]
        for plaintext, expected in vectors:
            assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == expected

    def test_zero_key_zero_block(self):
        assert (
            AES128(bytes(16)).encrypt_block(bytes(16)).hex()
            == "66e94bd4ef8a2c3b884cfa59ca342b2e"
        )


class TestStructure:
    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))

    def test_inverse_sbox_inverts(self):
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_key_schedule_length(self):
        assert len(expand_key(bytes(16))) == 44

    def test_key_schedule_first_words_are_the_key(self):
        key = bytes(range(16))
        words = expand_key(key)
        for i in range(4):
            assert words[i] == int.from_bytes(key[4 * i : 4 * i + 4], "big")

    def test_rejects_wrong_key_size(self):
        with pytest.raises(ValueError):
            AES128(bytes(15))

    def test_rejects_wrong_block_size(self):
        with pytest.raises(ValueError):
            AES128(bytes(16)).encrypt_block(bytes(8))


class TestRoundTrip:
    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_decrypt_inverts_encrypt(self, key, block):
        cipher = AES128(key)
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    def test_encryption_changes_the_block(self, block):
        cipher = AES128(b"\x01" * 16)
        assert cipher.encrypt_block(block) != block


class TestXorBytes:
    def test_xor(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            xor_bytes(b"\x00", b"\x00\x00")
