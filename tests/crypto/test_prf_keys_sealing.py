"""PRF backends, reservation-key derivation, sealing, and signatures."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.keys import SecretValue, derive_auth_key, pack_resinfo_input
from repro.crypto.prf import AesPrf, Blake2Prf, PrfFactory
from repro.crypto.sealing import KeyPair, seal, unseal
from repro.crypto.signatures import SigningKey, verify


class TestPrfBackends:
    @pytest.mark.parametrize("backend", ["aes", "blake2"])
    def test_output_is_16_bytes(self, backend):
        prf = PrfFactory(backend)(bytes(16))
        assert len(prf.compute(bytes(16))) == 16
        assert len(prf.compute(b"longer than one block" * 3)) == 16

    def test_aes_single_block_is_ecb(self):
        from repro.crypto.aes import AES128

        key = bytes(range(16))
        block = bytes(range(16, 32))
        assert AesPrf(key).compute(block) == AES128(key).encrypt_block(block)

    def test_backends_differ(self):
        key, msg = bytes(16), bytes(16)
        assert AesPrf(key).compute(msg) != Blake2Prf(key).compute(msg)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            PrfFactory("md5")

    def test_deterministic(self):
        prf = PrfFactory("blake2")(b"k" * 16)
        assert prf.compute(b"m") == prf.compute(b"m")


class TestResInfoPacking:
    def test_layout_is_one_aes_block(self):
        block = pack_resinfo_input(1, 2, 3, 4, 5, 6)
        assert len(block) == 16

    def test_field_positions(self):
        block = pack_resinfo_input(
            ingress=0x1234,
            egress=0x5678,
            res_id=0x2ABCDE,  # 22 bits
            bw_cls=0x3FF,
            res_start=0xDEADBEEF,
            res_duration=0xCAFE,
        )
        assert block[0:2] == bytes.fromhex("1234")
        assert block[2:4] == bytes.fromhex("5678")
        combined = int.from_bytes(block[4:8], "big")
        assert combined >> 10 == 0x2ABCDE
        assert combined & 0x3FF == 0x3FF
        assert block[8:12] == bytes.fromhex("deadbeef")
        assert block[12:14] == bytes.fromhex("cafe")
        assert block[14:16] == b"\x00\x00"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ingress": 1 << 16},
            {"egress": -1},
            {"res_id": 1 << 22},
            {"bw_cls": 1 << 10},
            {"res_start": 1 << 32},
            {"res_duration": 1 << 16},
        ],
    )
    def test_bounds(self, kwargs):
        base = dict(ingress=1, egress=2, res_id=3, bw_cls=4, res_start=5, res_duration=6)
        base.update(kwargs)
        with pytest.raises(ValueError):
            pack_resinfo_input(**base)

    def test_key_changes_with_any_field(self):
        sv = SecretValue.from_seed("test")
        base = derive_auth_key(sv, 1, 2, 3, 4, 5, 6)
        assert derive_auth_key(sv, 9, 2, 3, 4, 5, 6) != base
        assert derive_auth_key(sv, 1, 2, 3, 4, 99, 6) != base
        assert derive_auth_key(sv, 1, 2, 3, 4, 5, 6) == base

    def test_key_changes_with_secret_value(self):
        a = derive_auth_key(SecretValue.from_seed("a"), 1, 2, 3, 4, 5, 6)
        b = derive_auth_key(SecretValue.from_seed("b"), 1, 2, 3, 4, 5, 6)
        assert a != b


class TestSealing:
    def test_roundtrip(self):
        rng = random.Random(1)
        recipient = KeyPair.generate(rng)
        box = seal(recipient.public, b"secret reservation data", rng)
        assert unseal(recipient, box) == b"secret reservation data"

    def test_wrong_recipient_fails(self):
        rng = random.Random(2)
        recipient = KeyPair.generate(rng)
        other = KeyPair.generate(rng)
        box = seal(recipient.public, b"data", rng)
        with pytest.raises(ValueError):
            unseal(other, box)

    def test_tampered_ciphertext_fails(self):
        rng = random.Random(3)
        recipient = KeyPair.generate(rng)
        box = seal(recipient.public, b"data", rng)
        tampered = type(box)(
            kem_share=box.kem_share,
            ciphertext=bytes(b ^ 1 for b in box.ciphertext),
            tag=box.tag,
        )
        with pytest.raises(ValueError):
            unseal(recipient, tampered)

    @given(st.binary(min_size=1, max_size=200))
    def test_arbitrary_payloads(self, payload):
        rng = random.Random(4)
        recipient = KeyPair.generate(rng)
        assert unseal(recipient, seal(recipient.public, payload, rng)) == payload

    def test_context_separation(self):
        rng = random.Random(5)
        recipient = KeyPair.generate(rng)
        box = seal(recipient.public, b"data", rng, context=b"a")
        with pytest.raises(ValueError):
            unseal(recipient, box, context=b"b")


class TestSignatures:
    def test_sign_verify(self):
        rng = random.Random(6)
        key = SigningKey.generate(rng)
        signature = key.sign(b"register me", rng)
        assert verify(key.public, b"register me", signature)

    def test_wrong_message_rejected(self):
        rng = random.Random(7)
        key = SigningKey.generate(rng)
        signature = key.sign(b"register me", rng)
        assert not verify(key.public, b"register you", signature)

    def test_wrong_key_rejected(self):
        rng = random.Random(8)
        key = SigningKey.generate(rng)
        other = SigningKey.generate(rng)
        signature = key.sign(b"m", rng)
        assert not verify(other.public, b"m", signature)

    def test_degenerate_public_keys_rejected(self):
        rng = random.Random(9)
        signature = SigningKey.generate(rng).sign(b"m", rng)
        assert not verify(0, b"m", signature)
        assert not verify(1, b"m", signature)
