"""AES-CMAC against the four RFC 4493 test vectors plus API properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.cmac import Cmac, aes_cmac, derive_subkeys
from repro.crypto.aes import AES128

RFC_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
RFC_MSG = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710"
)


class TestRfc4493:
    def test_subkeys(self):
        k1, k2 = derive_subkeys(AES128(RFC_KEY))
        assert k1.hex() == "fbeed618357133667c85e08f7236a8de"
        assert k2.hex() == "f7ddac306ae266ccf90bc11ee46d513b"

    def test_empty_message(self):
        assert aes_cmac(RFC_KEY, b"").hex() == "bb1d6929e95937287fa37d129b756746"

    def test_16_bytes(self):
        assert aes_cmac(RFC_KEY, RFC_MSG[:16]).hex() == "070a16b46b4d4144f79bdd9dd04a287c"

    def test_40_bytes(self):
        assert aes_cmac(RFC_KEY, RFC_MSG[:40]).hex() == "dfa66747de9ae63030ca32611497c827"

    def test_64_bytes(self):
        assert aes_cmac(RFC_KEY, RFC_MSG).hex() == "51f0bebf7e3b9d92fc49741779363cfe"


class TestVerify:
    def test_accepts_valid_tag(self):
        mac = Cmac(RFC_KEY)
        assert mac.verify(RFC_MSG, mac.compute(RFC_MSG))

    def test_accepts_truncated_tag(self):
        mac = Cmac(RFC_KEY)
        assert mac.verify(RFC_MSG, mac.compute(RFC_MSG)[:6])

    def test_rejects_flipped_bit(self):
        mac = Cmac(RFC_KEY)
        tag = bytearray(mac.compute(RFC_MSG))
        tag[0] ^= 1
        assert not mac.verify(RFC_MSG, bytes(tag))

    def test_rejects_empty_tag(self):
        assert not Cmac(RFC_KEY).verify(RFC_MSG, b"")

    def test_rejects_overlong_tag(self):
        mac = Cmac(RFC_KEY)
        assert not mac.verify(RFC_MSG, mac.compute(RFC_MSG) + b"\x00")


class TestProperties:
    @given(st.binary(max_size=100))
    def test_output_is_16_bytes(self, message):
        assert len(aes_cmac(RFC_KEY, message)) == 16

    @given(st.binary(max_size=64), st.binary(max_size=64))
    def test_distinct_messages_distinct_macs(self, a, b):
        if a != b:
            assert aes_cmac(RFC_KEY, a) != aes_cmac(RFC_KEY, b)

    @given(st.binary(min_size=16, max_size=16), st.binary(min_size=16, max_size=16))
    def test_key_separation(self, key_a, key_b):
        if key_a != key_b:
            assert aes_cmac(key_a, RFC_MSG) != aes_cmac(key_b, RFC_MSG)

    def test_block_boundary_padding_differs(self):
        # A full final block uses K1, a padded one K2: 15 vs 16 bytes of the
        # same prefix must not collide via length extension.
        assert aes_cmac(RFC_KEY, RFC_MSG[:15]) != aes_cmac(RFC_KEY, RFC_MSG[:16])
