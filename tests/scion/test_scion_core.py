"""SCION substrate: addresses, topology, segments, beaconing, paths."""

import pytest

from repro.crypto.prf import PrfFactory
from repro.scion.addresses import HostAddr, IsdAs, ScionAddr
from repro.scion.beaconing import run_beaconing
from repro.scion.hopfields import absolute_expiry, chain_segid, compute_hopfield_mac
from repro.scion.paths import PathLookup, as_crossings, build_forwarding_path
from repro.scion.segments import SegmentKind, build_segment
from repro.scion.topology import (
    LinkType,
    Topology,
    core_mesh_topology,
    linear_topology,
    random_internet_topology,
)

BLAKE2 = PrfFactory("blake2")
T0 = 1_700_000_000


class TestAddresses:
    def test_isd_as_string(self):
        assert str(IsdAs(1, 0xFF00_0000_0110)) == "1-ff00:0:110"

    def test_pack_unpack(self):
        original = IsdAs(42, 0x0001_0002_0003)
        assert IsdAs.unpack(original.pack()) == original

    def test_bounds(self):
        with pytest.raises(ValueError):
            IsdAs(1 << 16, 0)
        with pytest.raises(ValueError):
            IsdAs(0, 1 << 48)

    def test_host_addr_dotted_quad(self):
        addr = HostAddr.from_string("10.1.2.3")
        assert str(addr) == "10.1.2.3"
        assert HostAddr.unpack(addr.pack()) == addr

    def test_bad_dotted_quad(self):
        with pytest.raises(ValueError):
            HostAddr.from_string("300.0.0.1")

    def test_scion_addr_string(self):
        addr = ScionAddr(IsdAs(1, 5), HostAddr.from_string("1.2.3.4"))
        assert str(addr) == "1-0:0:5,1.2.3.4"


class TestTopology:
    def test_linear_links(self):
        topo = linear_topology(4)
        assert len(topo.ases) == 4
        assert len(topo.links) == 3
        assert len(topo.core_ases) == 1

    def test_interfaces_are_paired(self):
        topo = linear_topology(3)
        for link in topo.links:
            a_iface = topo.as_of(link.a).interfaces[link.a_ifid]
            b_iface = topo.as_of(link.b).interfaces[link.b_ifid]
            assert a_iface.neighbor == link.b and a_iface.neighbor_ifid == link.b_ifid
            assert b_iface.neighbor == link.a and b_iface.neighbor_ifid == link.a_ifid

    def test_core_link_requires_core_ases(self):
        topo = linear_topology(2)
        with pytest.raises(ValueError):
            topo.add_link(topo.ases[0].isd_as, topo.ases[1].isd_as, LinkType.CORE)

    def test_duplicate_as_rejected(self):
        topo = Topology()
        topo.add_as(IsdAs(1, 1), is_core=True)
        with pytest.raises(ValueError):
            topo.add_as(IsdAs(1, 1), is_core=True)

    def test_children_and_parents(self):
        topo = core_mesh_topology(2, 2)
        core = topo.core_ases[0].isd_as
        children = topo.children_of(core)
        assert len(children) == 2
        assert all(core in topo.parents_of(child) for child in children)

    def test_random_topology_is_connected(self):
        import networkx as nx

        topo = random_internet_topology(5, 10, seed=3)
        assert nx.is_connected(topo.graph)

    def test_distinct_secret_values(self):
        topo = linear_topology(3)
        values = {a.secret_value.key for a in topo.ases}
        assert len(values) == 3


class TestSegments:
    def test_beta_chain(self):
        topo = linear_topology(3)
        route = [a.isd_as for a in topo.ases]
        segment = build_segment(topo, route, SegmentKind.INTRA_ISD, T0, 0x1234, 63, BLAKE2)
        assert segment.betas[0] == 0x1234
        for i, hop in enumerate(segment.hops):
            assert segment.betas[i + 1] == chain_segid(segment.betas[i], hop.mac)

    def test_macs_verify_with_as_keys(self):
        topo = linear_topology(3)
        route = [a.isd_as for a in topo.ases]
        segment = build_segment(topo, route, SegmentKind.INTRA_ISD, T0, 7, 63, BLAKE2)
        for i, hop in enumerate(segment.hops):
            expected = compute_hopfield_mac(
                topo.as_of(hop.isd_as).forwarding_key,
                segment.betas[i],
                T0,
                hop.exp_time,
                hop.cons_ingress,
                hop.cons_egress,
                BLAKE2,
            )
            assert expected == hop.mac

    def test_endpoints_have_zero_interfaces(self):
        topo = linear_topology(3)
        route = [a.isd_as for a in topo.ases]
        segment = build_segment(topo, route, SegmentKind.INTRA_ISD, T0, 7, 63, BLAKE2)
        assert segment.hops[0].cons_ingress == 0
        assert segment.hops[-1].cons_egress == 0

    def test_unlinked_route_rejected(self):
        topo = linear_topology(3)
        route = [topo.ases[0].isd_as, topo.ases[2].isd_as]
        with pytest.raises(ValueError):
            build_segment(topo, route, SegmentKind.INTRA_ISD, T0, 7, 63, BLAKE2)

    def test_expiry(self):
        assert absolute_expiry(T0, 255) == pytest.approx(T0 + 24 * 3600)


class TestBeaconing:
    def test_every_leaf_gets_segments(self):
        topo = core_mesh_topology(2, 3)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        for autonomous_system in topo.ases:
            if not autonomous_system.is_core:
                assert store.up_segments(autonomous_system.isd_as)

    def test_core_segment_direction_convention(self):
        topo = core_mesh_topology(3, 1)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        cores = [a.isd_as for a in topo.core_ases]
        segments = store.core_segments(cores[0], cores[1])
        assert segments
        # Constructed at the remote origin, ending at the local core.
        for segment in segments:
            assert segment.first_as == cores[1]
            assert segment.last_as == cores[0]

    def test_core_path_diversity(self):
        topo = core_mesh_topology(4, 1)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2, core_paths_per_pair=3)
        cores = [a.isd_as for a in topo.core_ases]
        assert len(store.core_segments(cores[0], cores[1])) >= 2


class TestPaths:
    def test_up_only_path(self, chain3=None):
        topo = linear_topology(3)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        lookup = PathLookup(store)
        paths = lookup.find_paths(topo.ases[2].isd_as, topo.ases[0].isd_as)
        assert paths and len(paths[0].segments) == 1
        assert not paths[0].segments[0].cons_dir  # traversed against construction

    def test_down_only_path(self):
        topo = linear_topology(3)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        lookup = PathLookup(store)
        paths = lookup.find_paths(topo.ases[0].isd_as, topo.ases[2].isd_as)
        assert paths and paths[0].segments[0].cons_dir

    def test_three_segment_path(self):
        topo = core_mesh_topology(2, 1)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        lookup = PathLookup(store)
        leaves = [a.isd_as for a in topo.ases if not a.is_core]
        paths = lookup.find_paths(leaves[0], leaves[1])
        assert paths
        assert len(paths[0].segments) == 3

    def test_crossings_merge_segment_boundaries(self):
        topo = core_mesh_topology(2, 1)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        lookup = PathLookup(store)
        leaves = [a.isd_as for a in topo.ases if not a.is_core]
        path = lookup.find_paths(leaves[0], leaves[1])[0]
        crossings = as_crossings(path)
        # leaf, core, core, leaf: 4 ASes but 6 hop fields (2 boundaries)
        assert len(crossings) == 4
        assert path.num_hopfields == 6
        boundary = crossings[1]
        assert len(boundary.positions) == 2
        assert boundary.ingress != 0 and boundary.egress != 0

    def test_endpoint_interfaces_are_zero(self):
        topo = linear_topology(4)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        path = PathLookup(store).find_paths(topo.ases[3].isd_as, topo.ases[0].isd_as)[0]
        crossings = as_crossings(path)
        assert crossings[0].ingress == 0
        assert crossings[-1].egress == 0

    def test_same_as_rejected(self):
        topo = linear_topology(2)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        with pytest.raises(ValueError):
            PathLookup(store).find_paths(topo.ases[0].isd_as, topo.ases[0].isd_as)

    def test_multipath_in_random_internet(self):
        topo = random_internet_topology(5, 8, seed=11)
        store = run_beaconing(topo, timestamp=T0, prf_factory=BLAKE2)
        lookup = PathLookup(store)
        leaves = [a.isd_as for a in topo.ases if not a.is_core]
        found_multi = False
        for src in leaves[:4]:
            for dst in leaves[4:]:
                if src == dst:
                    continue
                if len(lookup.find_paths(src, dst, max_paths=8)) > 1:
                    found_multi = True
        assert found_multi, "expected path diversity in a multihomed topology"

    def test_empty_combination_rejected(self):
        with pytest.raises(ValueError):
            build_forwarding_path(IsdAs(1, 1), IsdAs(1, 2), None, None, None)
