"""SCION packets (wire round-trips) and the baseline border router."""

import pytest

from tests.conftest import BLAKE2, T0, addresses, walk_path

from repro.clock import SimClock
from repro.hummingbird.source import ScionBestEffortSource
from repro.scion.packet import (
    PATH_TYPE_SCION,
    PacketPath,
    ScionPacket,
    decode_packet,
    encode_packet,
)
from repro.scion.router import Action, ScionRouter


def build_packet(path, payload=b"data"):
    src, dst = addresses(path)
    return ScionBestEffortSource(src, dst, path).build_packet(payload)


class TestWireFormat:
    def test_roundtrip(self, chain3):
        _, path = chain3
        packet = build_packet(path, b"hello world")
        wire = encode_packet(packet)
        decoded = decode_packet(wire)
        assert decoded.payload == b"hello world"
        assert decoded.src == packet.src and decoded.dst == packet.dst
        assert decoded.path_type == PATH_TYPE_SCION
        assert decoded.path.curr_hf == 0
        assert len(decoded.path.segments) == len(packet.path.segments)
        for a, b in zip(decoded.path.segments, packet.path.segments):
            assert a.cons_dir == b.cons_dir
            assert a.timestamp == b.timestamp
            assert [h.mac for h in a.hopfields] == [h.mac for h in b.hopfields]

    def test_hdr_len_is_4_byte_aligned(self, chain5):
        _, path = chain5
        packet = build_packet(path)
        assert packet.header_bytes() % 4 == 0
        assert packet.packet_length() == len(encode_packet(packet))

    def test_cursor_state_survives_roundtrip(self, chain3):
        _, path = chain3
        packet = build_packet(path)
        packet.path.curr_hf = 1
        packet.path.segids[0] ^= 0xBEEF
        decoded = decode_packet(encode_packet(packet))
        assert decoded.path.curr_hf == 1
        assert decoded.path.segids[0] == packet.path.segids[0]

    def test_truncated_packet_rejected(self, chain3):
        _, path = chain3
        wire = encode_packet(build_packet(path))
        with pytest.raises(ValueError):
            decode_packet(wire[:20])

    def test_payload_length_mismatch_rejected(self, chain3):
        _, path = chain3
        wire = bytearray(encode_packet(build_packet(path, b"xxxx")))
        with pytest.raises(ValueError):
            decode_packet(bytes(wire[:-1]))


class TestBaselineRouter:
    def test_full_traversal(self, chain5, clock):
        topology, path = chain5
        routers = {
            a.isd_as: ScionRouter(a, clock, BLAKE2) for a in topology.ases
        }
        packet = build_packet(path)
        decisions = walk_path(topology, routers, packet, path.src)
        assert decisions[-1].action is Action.DELIVER
        assert all(d.action is Action.FORWARD for d in decisions[:-1])

    def test_tampered_mac_dropped(self, chain3, clock):
        topology, path = chain3
        routers = {a.isd_as: ScionRouter(a, clock, BLAKE2) for a in topology.ases}
        packet = build_packet(path)
        hop = packet.path.segments[0].hopfields[1]
        hop.mac = bytes(b ^ 0x01 for b in hop.mac)
        decisions = walk_path(topology, routers, packet, path.src)
        assert decisions[-1].action is Action.DROP
        assert "MAC" in decisions[-1].reason

    def test_tampered_interface_dropped(self, chain3, clock):
        topology, path = chain3
        routers = {a.isd_as: ScionRouter(a, clock, BLAKE2) for a in topology.ases}
        packet = build_packet(path)
        packet.path.segments[0].hopfields[0].cons_egress = 9
        first = routers[path.src].process(packet, 0)
        assert first.action is Action.DROP

    def test_expired_hopfield_dropped(self, chain3):
        topology, path = chain3
        late = SimClock(float(T0 + 10 * 24 * 3600))  # 10 days later
        routers = {a.isd_as: ScionRouter(a, late, BLAKE2) for a in topology.ases}
        packet = build_packet(path)
        decision = routers[path.src].process(packet, 0)
        assert decision.action is Action.DROP
        assert "expired" in decision.reason

    def test_wrong_ingress_interface_dropped(self, chain3, clock):
        topology, path = chain3
        routers = {a.isd_as: ScionRouter(a, clock, BLAKE2) for a in topology.ases}
        packet = build_packet(path)
        # Process the first hop correctly, then feed the second router a
        # wrong ingress interface id.
        first = routers[path.src].process(packet, 0)
        assert first.forwarded
        interface = topology.as_of(path.src).interfaces[first.egress_ifid]
        wrong_ingress = interface.neighbor_ifid + 7
        second = routers[interface.neighbor].process(packet, wrong_ingress)
        assert second.action is Action.DROP

    def test_exhausted_path_dropped(self, chain3, clock):
        topology, path = chain3
        routers = {a.isd_as: ScionRouter(a, clock, BLAKE2) for a in topology.ases}
        packet = build_packet(path)
        walk_path(topology, routers, packet, path.src)
        decision = routers[path.dst].process(packet, 0)
        assert decision.action is Action.DROP

    def test_replayed_segment_boundary_path(self, clock):
        """A 3-segment path (up+core+down) traverses both boundary ASes."""
        from repro.netsim.scenarios import SIM_PRF
        from repro.scion.beaconing import run_beaconing
        from repro.scion.paths import PathLookup
        from repro.scion.topology import core_mesh_topology

        topology = core_mesh_topology(2, 1)
        store = run_beaconing(topology, timestamp=T0, prf_factory=SIM_PRF)
        leaves = [a.isd_as for a in topology.ases if not a.is_core]
        path = PathLookup(store).find_paths(leaves[0], leaves[1])[0]
        routers = {a.isd_as: ScionRouter(a, clock, SIM_PRF) for a in topology.ases}
        packet = build_packet(path)
        decisions = walk_path(topology, routers, packet, path.src)
        assert decisions[-1].action is Action.DELIVER
        assert len(decisions) == 4  # 4 ASes despite 6 hop fields
