"""Ledger-level combinatorial path auctions: one escrow, all legs or none."""

import random

import pytest

from repro.contracts.asset import AssetContract
from repro.contracts.coin import CoinContract, coin_balance
from repro.contracts.market import MarketContract
from repro.controlplane.pki import CpPki
from repro.ledger.accounts import Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.transactions import Command, Result, Transaction
from repro.scion.addresses import IsdAs

WINDOW = (1000, 1000 + 600)
DURATION = WINDOW[1] - WINDOW[0]
FUNDING = sui_to_mist(1)
MICROMIST = 1_000_000


@pytest.fixture
def world():
    """Ledger + marketplace + two registered leg-seller ASes."""
    rng = random.Random(13)
    pki = CpPki(seed=13)
    ledger = Ledger()
    ledger.register_contract(CoinContract())
    ledger.register_contract(AssetContract(pki))
    ledger.register_contract(MarketContract())

    def make_seller(isd_as, name):
        account = Account.generate(rng, name)
        certificate = pki.issue_certificate(isd_as, account.signing_key.public)
        proof = account.signing_key.sign(account.address.encode(), rng)
        registered = ledger.execute(
            Transaction(
                account.address,
                [
                    Command(
                        "asset",
                        "register_as",
                        {
                            "certificate": certificate,
                            "commitment": proof.commitment,
                            "response": proof.response,
                        },
                    )
                ],
            )
        )
        assert registered.ok, registered.error
        return account, registered.returns[0]["token"]

    seller_a, token_a = make_seller(IsdAs(1, 42), "as-a")
    seller_b, token_b = make_seller(IsdAs(1, 43), "as-b")
    created = ledger.execute(
        Transaction(seller_a.address, [Command("market", "create_marketplace", {})])
    )
    marketplace = created.returns[0]["marketplace"]
    for seller in (seller_a, seller_b):
        assert ledger.execute(
            Transaction(
                seller.address,
                [Command("market", "register_seller", {"marketplace": marketplace})],
            )
        ).ok
    return {
        "rng": rng,
        "ledger": ledger,
        "marketplace": marketplace,
        "sellers": [(seller_a, token_a), (seller_b, token_b)],
    }


def open_path_auction(world, bandwidths=(1000, 1000), reserve=20, min_bw=100):
    ledger = world["ledger"]
    creator = world["sellers"][0][0]
    opened = ledger.execute(
        Transaction(
            creator.address,
            [
                Command(
                    "market",
                    "create_path_auction",
                    {"marketplace": world["marketplace"], "num_legs": len(bandwidths)},
                )
            ],
        )
    )
    assert opened.ok, opened.error
    path_auction = opened.returns[0]["path_auction"]
    for index, bandwidth in enumerate(bandwidths):
        seller, token = world["sellers"][index % len(world["sellers"])]
        contributed = ledger.execute(
            Transaction(
                seller.address,
                [
                    Command(
                        "asset",
                        "issue",
                        {
                            "token": token,
                            "bandwidth_kbps": bandwidth,
                            "start": WINDOW[0],
                            "expiry": WINDOW[1],
                            "interface": index + 1,
                            "is_ingress": index % 2 == 0,
                            "granularity": 60,
                            "min_bandwidth_kbps": min_bw,
                        },
                    ),
                    Command(
                        "market",
                        "contribute_path_leg",
                        {
                            "marketplace": world["marketplace"],
                            "path_auction": path_auction,
                            "leg_index": index,
                            "asset": Result(0, "asset"),
                            "reserve_micromist_per_unit": reserve,
                        },
                    ),
                ],
            )
        )
        assert contributed.ok, contributed.error
    return path_auction


def make_bidder(world, name):
    account = Account.generate(world["rng"], name)
    funded = world["ledger"].execute(
        Transaction(account.address, [Command("coin", "mint", {"amount": FUNDING})])
    )
    return account, funded.returns[0]["coin"]


def place_path_bid(world, account, coin, path_auction, bandwidth_kbps, price):
    return world["ledger"].execute(
        Transaction(
            account.address,
            [
                Command(
                    "market",
                    "place_path_bid",
                    {
                        "marketplace": world["marketplace"],
                        "path_auction": path_auction,
                        "bandwidth_kbps": bandwidth_kbps,
                        "price_micromist_per_unit": price,
                        "payment": coin,
                    },
                )
            ],
        )
    )


def settle(world, path_auction, supplies_kbps=None, sender=None):
    sender = sender if sender is not None else world["sellers"][0][0]
    return world["ledger"].execute(
        Transaction(
            sender.address,
            [
                Command(
                    "market",
                    "settle_path_auction",
                    {
                        "marketplace": world["marketplace"],
                        "path_auction": path_auction,
                        "supplies_kbps": supplies_kbps,
                    },
                )
            ],
        )
    )


class TestPlacePathBid:
    def test_escrow_covers_every_leg(self, world):
        path_auction = open_path_auction(world)
        account, coin = make_bidder(world, "alice")
        effects = place_path_bid(world, account, coin, path_auction, 400, 90)
        assert effects.ok, effects.error
        # per leg: ceil(400 * 600 * 90 / 1e6) = 22 MIST; two legs -> 44.
        assert effects.returns[0]["escrow_mist"] == 44
        assert coin_balance(world["ledger"], account.address) == FUNDING - 44

    def test_rejects_bids_before_full_contribution(self, world):
        ledger = world["ledger"]
        creator = world["sellers"][0][0]
        opened = ledger.execute(
            Transaction(
                creator.address,
                [
                    Command(
                        "market",
                        "create_path_auction",
                        {"marketplace": world["marketplace"], "num_legs": 2},
                    )
                ],
            )
        )
        path_auction = opened.returns[0]["path_auction"]
        account, coin = make_bidder(world, "early")
        effects = place_path_bid(world, account, coin, path_auction, 400, 90)
        assert not effects.ok and "not fully contributed" in effects.error

    def test_leg_seller_cannot_bid(self, world):
        path_auction = open_path_auction(world)
        seller_b = world["sellers"][1][0]
        funded = world["ledger"].execute(
            Transaction(
                seller_b.address, [Command("coin", "mint", {"amount": FUNDING})]
            )
        )
        effects = place_path_bid(
            world, seller_b, funded.returns[0]["coin"], path_auction, 400, 90
        )
        assert not effects.ok and "cannot bid" in effects.error

    def test_bandwidth_bounded_by_narrowest_leg(self, world):
        path_auction = open_path_auction(world, bandwidths=(1000, 600))
        account, coin = make_bidder(world, "wide")
        effects = place_path_bid(world, account, coin, path_auction, 700, 90)
        assert not effects.ok and "outside" in effects.error

    def test_legs_must_share_the_window(self, world):
        ledger = world["ledger"]
        creator, token = world["sellers"][0]
        opened = ledger.execute(
            Transaction(
                creator.address,
                [
                    Command(
                        "market",
                        "create_path_auction",
                        {"marketplace": world["marketplace"], "num_legs": 2},
                    )
                ],
            )
        )
        path_auction = opened.returns[0]["path_auction"]

        def contribute(start, expiry, leg_index):
            return ledger.execute(
                Transaction(
                    creator.address,
                    [
                        Command(
                            "asset",
                            "issue",
                            {
                                "token": token,
                                "bandwidth_kbps": 500,
                                "start": start,
                                "expiry": expiry,
                                "interface": 1,
                                "is_ingress": True,
                                "granularity": 60,
                                "min_bandwidth_kbps": 100,
                            },
                        ),
                        Command(
                            "market",
                            "contribute_path_leg",
                            {
                                "marketplace": world["marketplace"],
                                "path_auction": path_auction,
                                "leg_index": leg_index,
                                "asset": Result(0, "asset"),
                                "reserve_micromist_per_unit": 20,
                            },
                        ),
                    ],
                )
            )

        assert contribute(WINDOW[0], WINDOW[1], 0).ok
        mismatched = contribute(WINDOW[0] + 60, WINDOW[1], 1)
        assert not mismatched.ok and "same time window" in mismatched.error


class TestSettlePathAuction:
    def test_all_legs_awarded_and_escrow_conserved(self, world):
        path_auction = open_path_auction(world, reserve=20)
        ledger = world["ledger"]
        people = []
        escrows = {}
        for name, bw, price in (("alice", 400, 90), ("bob", 400, 70), ("carol", 400, 50)):
            account, coin = make_bidder(world, name)
            placed = place_path_bid(world, account, coin, path_auction, bw, price)
            assert placed.ok, placed.error
            escrows[account.address] = placed.returns[0]["escrow_mist"]
            people.append(account)
        effects = settle(world, path_auction)
        assert effects.ok, effects.error
        result = effects.returns[0]
        # carol's losing 50 supports the price on both legs.
        assert result["clearing_prices_micromist"] == [50, 50]
        assert [w["bidder"] for w in result["winners"]] == [
            people[0].address,
            people[1].address,
        ]
        per_leg = -(-400 * DURATION * 50 // MICROMIST)  # 12 MIST
        for winner in result["winners"]:
            assert winner["paid_mist"] == 2 * per_leg
            assert len(winner["assets"]) == 2  # one piece per leg
        # Escrow conservation: paid + refunds == escrows, to the MIST.
        paid = sum(w["paid_mist"] for w in result["winners"])
        refunds = sum(w["refund_mist"] for w in result["winners"]) + sum(
            l["refund_mist"] for l in result["losers"]
        )
        assert paid + refunds == sum(escrows.values())
        # Each leg's seller got exactly that leg's proceeds.
        for leg in result["legs"]:
            assert leg["proceeds_mist"] == 2 * per_leg
        assert coin_balance(ledger, people[2].address) == FUNDING  # loser whole
        # Winners paid the path clearing price, got the surplus back.
        assert coin_balance(ledger, people[0].address) == FUNDING - 2 * per_leg
        assert coin_balance(ledger, people[1].address) == FUNDING - 2 * per_leg
        # Unawarded 200 kbps per leg reverted to posted listings.
        assert all(leg["listing"] is not None for leg in result["legs"])

    def test_partial_winner_is_fully_refunded(self, world):
        """A bid that fits one leg but not the other wins nothing, pays nothing."""
        path_auction = open_path_auction(world, bandwidths=(1000, 1000))
        people = []
        for name, bw, price in (("big", 900, 90), ("small", 300, 70)):
            account, coin = make_bidder(world, name)
            assert place_path_bid(world, account, coin, path_auction, bw, price).ok
            people.append(account)
        # Leg 1 lost headroom: only 400 kbps sellable there.
        effects = settle(world, path_auction, supplies_kbps=[1000, 400])
        assert effects.ok, effects.error
        result = effects.returns[0]
        assert [w["bidder"] for w in result["winners"]] == [people[1].address]
        (lost,) = result["losers"]
        assert lost["bidder"] == people[0].address
        assert lost["leg"] == 1 and lost["reason"] == "supply exhausted"
        assert coin_balance(world["ledger"], people[0].address) == FUNDING

    def test_nothing_clears_full_refunds_and_relisting(self, world):
        path_auction = open_path_auction(world, reserve=20)
        account, coin = make_bidder(world, "cheap")
        assert place_path_bid(world, account, coin, path_auction, 400, 90).ok
        # Both legs lost all headroom at settle time.
        effects = settle(world, path_auction, supplies_kbps=[0, 0])
        assert effects.ok, effects.error
        result = effects.returns[0]
        assert result["winners"] == [] and result["proceeds_mist"] == 0
        assert coin_balance(world["ledger"], account.address) == FUNDING
        assert all(leg["listing"] is not None for leg in result["legs"])

    def test_only_leg_sellers_or_creator_settle(self, world):
        path_auction = open_path_auction(world)
        outsider, _ = make_bidder(world, "outsider")
        effects = settle(world, path_auction, sender=outsider)
        assert not effects.ok and "may settle" in effects.error

    def test_settle_emits_conservation_checkable_event(self, world):
        path_auction = open_path_auction(world)
        ledger = world["ledger"]
        for name, bw, price in (("a", 500, 80), ("b", 500, 60), ("c", 300, 40)):
            account, coin = make_bidder(world, name)
            assert place_path_bid(world, account, coin, path_auction, bw, price).ok
        assert settle(world, path_auction).ok
        placed = ledger.events_since(0, "PathBidPlaced")
        settled = ledger.events_since(0, "PathAuctionSettled")
        assert len(settled) == 1
        payload = settled[0].payload
        escrow_total = sum(e.payload["escrow_mist"] for e in placed)
        paid = sum(w["paid_mist"] for w in payload["winners"])
        refunds = sum(w["refund_mist"] for w in payload["winners"]) + sum(
            l["refund_mist"] for l in payload["losers"]
        )
        assert paid + refunds == escrow_total
        assert payload["proceeds_mist"] == paid
