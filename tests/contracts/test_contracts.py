"""Asset and market contracts: issuance, splitting, fusing, redeeming, trading."""

import random

import pytest

from repro.contracts.asset import ASSET_TYPE, REQUEST_TYPE, AssetContract
from repro.contracts.coin import CoinContract, coin_balance
from repro.contracts.market import LISTING_TYPE, MarketContract
from repro.controlplane.pki import CpPki
from repro.ledger.accounts import Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.transactions import Command, Result, Transaction
from repro.scion.addresses import IsdAs

AS_ID = IsdAs(1, 42)


@pytest.fixture
def world():
    """Ledger with contracts, a registered AS, and a funded buyer."""
    rng = random.Random(11)
    pki = CpPki(seed=11)
    ledger = Ledger()
    ledger.register_contract(CoinContract())
    ledger.register_contract(AssetContract(pki))
    ledger.register_contract(MarketContract())

    as_account = Account.generate(rng, "as")
    certificate = pki.issue_certificate(AS_ID, as_account.signing_key.public)
    proof = as_account.signing_key.sign(as_account.address.encode(), rng)
    registered = ledger.execute(
        Transaction(
            as_account.address,
            [
                Command(
                    "asset",
                    "register_as",
                    {
                        "certificate": certificate,
                        "commitment": proof.commitment,
                        "response": proof.response,
                    },
                )
            ],
        )
    )
    assert registered.ok, registered.error
    token = registered.returns[0]["token"]

    buyer = Account.generate(rng, "buyer")
    funded = ledger.execute(
        Transaction(buyer.address, [Command("coin", "mint", {"amount": sui_to_mist(10)})])
    )
    coin = funded.returns[0]["coin"]
    return {
        "rng": rng,
        "pki": pki,
        "ledger": ledger,
        "as_account": as_account,
        "token": token,
        "buyer": buyer,
        "coin": coin,
    }


def issue(world, **overrides):
    args = dict(
        token=world["token"],
        bandwidth_kbps=1_000_000,
        start=1000,
        expiry=1000 + 3600,
        interface=1,
        is_ingress=True,
        granularity=60,
        min_bandwidth_kbps=100,
    )
    args.update(overrides)
    effects = world["ledger"].execute(
        Transaction(world["as_account"].address, [Command("asset", "issue", args)])
    )
    assert effects.ok, effects.error
    return effects.returns[0]["asset"]


class TestRegistration:
    def test_forged_certificate_rejected(self, world):
        rng = world["rng"]
        impostor = Account.generate(rng, "impostor")
        fake_cert = {
            "isd": 1,
            "asn": 42,
            "public_key": impostor.signing_key.public.to_bytes(256, "big"),
            "sig_commitment": bytes(256),
            "sig_response": bytes(256),
        }
        proof = impostor.signing_key.sign(impostor.address.encode(), rng)
        effects = world["ledger"].execute(
            Transaction(
                impostor.address,
                [
                    Command(
                        "asset",
                        "register_as",
                        {
                            "certificate": fake_cert,
                            "commitment": proof.commitment,
                            "response": proof.response,
                        },
                    )
                ],
            )
        )
        assert not effects.ok

    def test_stolen_certificate_rejected(self, world):
        """Possessing someone's certificate without their key fails."""
        rng = world["rng"]
        thief = Account.generate(rng, "thief")
        certificate = world["pki"].issue_certificate(
            AS_ID, world["as_account"].signing_key.public
        )
        proof = thief.signing_key.sign(thief.address.encode(), rng)  # wrong key
        effects = world["ledger"].execute(
            Transaction(
                thief.address,
                [
                    Command(
                        "asset",
                        "register_as",
                        {
                            "certificate": certificate,
                            "commitment": proof.commitment,
                            "response": proof.response,
                        },
                    )
                ],
            )
        )
        assert not effects.ok
        assert "proof of possession" in effects.error

    def test_issue_without_token_rejected(self, world):
        effects = world["ledger"].execute(
            Transaction(
                world["buyer"].address,
                [
                    Command(
                        "asset",
                        "issue",
                        dict(
                            token="0" * 64,
                            bandwidth_kbps=1000,
                            start=0,
                            expiry=60,
                            interface=1,
                            is_ingress=True,
                            granularity=60,
                            min_bandwidth_kbps=100,
                        ),
                    )
                ],
            )
        )
        assert not effects.ok


class TestIssuanceRules:
    def test_as_identity_comes_from_token(self, world):
        asset_id = issue(world)
        asset = world["ledger"].get_object(asset_id)
        assert (asset.payload["isd"], asset.payload["asn"]) == (AS_ID.isd, AS_ID.asn)

    def test_duration_must_match_granularity(self, world):
        ledger = world["ledger"]
        effects = ledger.execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "issue",
                        dict(
                            token=world["token"],
                            bandwidth_kbps=1000,
                            start=0,
                            expiry=61,
                            interface=1,
                            is_ingress=True,
                            granularity=60,
                            min_bandwidth_kbps=100,
                        ),
                    )
                ],
            )
        )
        assert not effects.ok

    def test_bandwidth_below_minimum_rejected(self, world):
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "issue",
                        dict(
                            token=world["token"],
                            bandwidth_kbps=50,
                            start=0,
                            expiry=60,
                            interface=1,
                            is_ingress=True,
                            granularity=60,
                            min_bandwidth_kbps=100,
                        ),
                    )
                ],
            )
        )
        assert not effects.ok


class TestSplitFuse:
    def test_split_time_conserves_interval(self, world):
        asset_id = issue(world)
        ledger = world["ledger"]
        effects = ledger.execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "split_time", {"asset": asset_id, "split_at": 1000 + 1800})],
            )
        )
        assert effects.ok
        first = ledger.get_object(effects.returns[0]["first"])
        second = ledger.get_object(effects.returns[0]["second"])
        assert first.payload["expiry"] == second.payload["start"] == 2800
        assert first.payload["start"] == 1000
        assert second.payload["expiry"] == 4600

    def test_split_time_respects_granularity(self, world):
        asset_id = issue(world)
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "split_time", {"asset": asset_id, "split_at": 1030})],
            )
        )
        assert not effects.ok

    def test_split_bandwidth_conserves_total(self, world):
        asset_id = issue(world)
        ledger = world["ledger"]
        effects = ledger.execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "split_bandwidth", {"asset": asset_id, "bandwidth_kbps": 300_000})],
            )
        )
        assert effects.ok
        first = ledger.get_object(effects.returns[0]["first"])
        second = ledger.get_object(effects.returns[0]["second"])
        assert first.payload["bandwidth_kbps"] + second.payload["bandwidth_kbps"] == 1_000_000
        assert second.payload["bandwidth_kbps"] == 300_000

    def test_split_below_minimum_rejected(self, world):
        asset_id = issue(world, min_bandwidth_kbps=400_000)
        # Splitting 700k off a 1M asset leaves 300k < 400k minimum: abort.
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "split_bandwidth", {"asset": asset_id, "bandwidth_kbps": 700_000})],
            )
        )
        assert not effects.ok
        # Splitting 100k violates the minimum on the piece itself: abort.
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "split_bandwidth", {"asset": asset_id, "bandwidth_kbps": 100_000})],
            )
        )
        assert not effects.ok

    def test_fuse_time_restores_asset(self, world):
        asset_id = issue(world)
        ledger = world["ledger"]
        split = ledger.execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "split_time", {"asset": asset_id, "split_at": 2800})],
            )
        )
        fused = ledger.execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "fuse_time",
                        {"first": split.returns[0]["first"], "second": split.returns[0]["second"]},
                    )
                ],
            )
        )
        assert fused.ok
        restored = ledger.get_object(asset_id)
        assert restored.payload["start"] == 1000 and restored.payload["expiry"] == 4600
        # The fused-away piece is gone.
        assert split.returns[0]["second"] not in ledger.objects

    def test_fuse_nets_negative_gas(self, world):
        asset_id = issue(world)
        ledger = world["ledger"]
        split = ledger.execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "split_time", {"asset": asset_id, "split_at": 2800})],
            )
        )
        fused = ledger.execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "fuse_time",
                        {"first": split.returns[0]["first"], "second": split.returns[0]["second"]},
                    )
                ],
            )
        )
        assert fused.gas.total_sui < 0  # Table 2: fuse_time earns SUI

    def test_fuse_incompatible_rejected(self, world):
        a = issue(world, interface=1)
        b = issue(world, interface=2)
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "fuse_bandwidth", {"first": a, "second": b})],
            )
        )
        assert not effects.ok


class TestRedeem:
    def _pair(self, world):
        ingress = issue(world, interface=1, is_ingress=True)
        egress = issue(world, interface=2, is_ingress=False)
        return ingress, egress

    def test_redeem_wraps_assets(self, world):
        ingress, egress = self._pair(world)
        ledger = world["ledger"]
        effects = ledger.execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "redeem",
                        {"ingress": ingress, "egress": egress, "public_key": bytes(256)},
                    )
                ],
            )
        )
        assert effects.ok
        assert ingress not in ledger.objects and egress not in ledger.objects
        request = ledger.get_object(effects.returns[0]["request"])
        assert request.type_tag == REQUEST_TYPE
        assert request.owner == world["as_account"].address  # routed to issuer

    def test_redeem_mismatched_pair_rejected(self, world):
        ingress = issue(world, interface=1, is_ingress=True)
        egress = issue(world, interface=2, is_ingress=False, bandwidth_kbps=500_000)
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "redeem",
                        {"ingress": ingress, "egress": egress, "public_key": bytes(256)},
                    )
                ],
            )
        )
        assert not effects.ok

    def test_redeem_two_ingress_rejected(self, world):
        a = issue(world, interface=1, is_ingress=True)
        b = issue(world, interface=2, is_ingress=True)
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [Command("asset", "redeem", {"ingress": a, "egress": b, "public_key": bytes(256)})],
            )
        )
        assert not effects.ok

    def test_redeem_overlong_duration_rejected(self, world):
        ingress = issue(world, interface=1, is_ingress=True, expiry=1000 + 100_000 * 60 * 60)
        egress = issue(world, interface=2, is_ingress=False, expiry=1000 + 100_000 * 60 * 60)
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "redeem",
                        {"ingress": ingress, "egress": egress, "public_key": bytes(256)},
                    )
                ],
            )
        )
        assert not effects.ok
        assert "ResDuration" in effects.error

    def test_deliver_by_non_issuer_rejected(self, world):
        ingress, egress = self._pair(world)
        ledger = world["ledger"]
        redeemed = ledger.execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "asset",
                        "redeem",
                        {"ingress": ingress, "egress": egress, "public_key": bytes(256)},
                    )
                ],
            )
        )
        request = redeemed.returns[0]["request"]
        effects = ledger.execute(
            Transaction(
                world["buyer"].address,
                [
                    Command(
                        "asset",
                        "deliver_reservation",
                        {"request": request, "kem_share": bytes(256), "ciphertext": b"x", "tag": bytes(16)},
                    )
                ],
            )
        )
        assert not effects.ok


class TestMarket:
    def _marketplace(self, world):
        ledger = world["ledger"]
        created = ledger.execute(
            Transaction(world["as_account"].address, [Command("market", "create_marketplace", {})])
        )
        marketplace = created.returns[0]["marketplace"]
        ledger.execute(
            Transaction(
                world["as_account"].address,
                [Command("market", "register_seller", {"marketplace": marketplace})],
            )
        )
        return marketplace

    def _list(self, world, marketplace, asset_id, price=50):
        effects = world["ledger"].execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "market",
                        "create_listing",
                        {
                            "marketplace": marketplace,
                            "asset": asset_id,
                            "price_micromist_per_unit": price,
                        },
                    )
                ],
            )
        )
        assert effects.ok, effects.error
        return effects.returns[0]["listing"]

    def test_unregistered_seller_rejected(self, world):
        ledger = world["ledger"]
        created = ledger.execute(
            Transaction(world["buyer"].address, [Command("market", "create_marketplace", {})])
        )
        marketplace = created.returns[0]["marketplace"]
        asset_id = issue(world)
        effects = ledger.execute(
            Transaction(
                world["as_account"].address,
                [
                    Command(
                        "market",
                        "create_listing",
                        {"marketplace": marketplace, "asset": asset_id, "price_micromist_per_unit": 1},
                    )
                ],
            )
        )
        assert not effects.ok

    def test_buy_full_asset_deletes_listing(self, world):
        marketplace = self._marketplace(world)
        asset_id = issue(world)
        listing = self._list(world, marketplace, asset_id)
        ledger = world["ledger"]
        effects = ledger.execute(
            Transaction(
                world["buyer"].address,
                [
                    Command(
                        "market",
                        "buy",
                        {
                            "marketplace": marketplace,
                            "listing": listing,
                            "start": 1000,
                            "expiry": 4600,
                            "bandwidth_kbps": 1_000_000,
                            "payment": world["coin"],
                        },
                    )
                ],
            )
        )
        assert effects.ok, effects.error
        assert listing not in ledger.objects
        bought = ledger.get_object(effects.returns[0]["asset"])
        assert bought.owner == world["buyer"].address

    def test_buy_with_worst_case_split(self, world):
        marketplace = self._marketplace(world)
        asset_id = issue(world)
        listing = self._list(world, marketplace, asset_id)
        ledger = world["ledger"]
        effects = ledger.execute(
            Transaction(
                world["buyer"].address,
                [
                    Command(
                        "market",
                        "buy",
                        {
                            "marketplace": marketplace,
                            "listing": listing,
                            "start": 1600,
                            "expiry": 2200,
                            "bandwidth_kbps": 4_000,
                            "payment": world["coin"],
                        },
                    )
                ],
            )
        )
        assert effects.ok, effects.error
        bought = ledger.get_object(effects.returns[0]["asset"])
        assert bought.payload["start"] == 1600
        assert bought.payload["expiry"] == 2200
        assert bought.payload["bandwidth_kbps"] == 4_000
        # Remainders stay on the market: original listing + 2 new ones.
        listings = [o for o in ledger.objects.values() if o.type_tag == LISTING_TYPE]
        assert len(listings) == 3
        total_units = sum(
            ledger.get_object(l.payload["asset"]).payload["bandwidth_kbps"]
            * (
                ledger.get_object(l.payload["asset"]).payload["expiry"]
                - ledger.get_object(l.payload["asset"]).payload["start"]
            )
            for l in listings
        ) + bought.payload["bandwidth_kbps"] * 600
        assert total_units == 1_000_000 * 3600  # volume conserved

    def test_payment_flows_to_seller(self, world):
        marketplace = self._marketplace(world)
        asset_id = issue(world)
        listing = self._list(world, marketplace, asset_id, price=1_000_000)
        ledger = world["ledger"]
        seller_before = coin_balance(ledger, world["as_account"].address)
        buyer_before = coin_balance(ledger, world["buyer"].address)
        effects = ledger.execute(
            Transaction(
                world["buyer"].address,
                [
                    Command(
                        "market",
                        "buy",
                        {
                            "marketplace": marketplace,
                            "listing": listing,
                            "start": 1000,
                            "expiry": 1060,
                            "bandwidth_kbps": 1000,
                            "payment": world["coin"],
                        },
                    )
                ],
            )
        )
        price = effects.returns[0]["price_mist"]
        assert price == 1000 * 60  # units * 1 MIST per unit
        assert coin_balance(ledger, world["as_account"].address) == seller_before + price
        assert coin_balance(ledger, world["buyer"].address) == buyer_before - price

    def test_insufficient_payment_rejected(self, world):
        marketplace = self._marketplace(world)
        asset_id = issue(world)
        listing = self._list(world, marketplace, asset_id, price=10**12)
        effects = world["ledger"].execute(
            Transaction(
                world["buyer"].address,
                [
                    Command(
                        "market",
                        "buy",
                        {
                            "marketplace": marketplace,
                            "listing": listing,
                            "start": 1000,
                            "expiry": 4600,
                            "bandwidth_kbps": 1_000_000,
                            "payment": world["coin"],
                        },
                    )
                ],
            )
        )
        assert not effects.ok
        assert "insufficient" in effects.error

    def test_cancel_listing_returns_asset(self, world):
        marketplace = self._marketplace(world)
        asset_id = issue(world)
        listing = self._list(world, marketplace, asset_id)
        ledger = world["ledger"]
        effects = ledger.execute(
            Transaction(
                world["as_account"].address,
                [Command("market", "cancel_listing", {"marketplace": marketplace, "listing": listing})],
            )
        )
        assert effects.ok
        assert ledger.get_object(asset_id).owner == world["as_account"].address

    def test_atomic_buy_and_redeem_in_one_transaction(self, world):
        marketplace = self._marketplace(world)
        ingress_asset = issue(world, interface=1, is_ingress=True)
        egress_asset = issue(world, interface=2, is_ingress=False)
        ingress_listing = self._list(world, marketplace, ingress_asset)
        egress_listing = self._list(world, marketplace, egress_asset)
        window = {"start": 1600, "expiry": 2200, "bandwidth_kbps": 4_000}
        effects = world["ledger"].execute(
            Transaction(
                world["buyer"].address,
                [
                    Command("market", "buy", {"marketplace": marketplace, "listing": ingress_listing, "payment": world["coin"], **window}),
                    Command("market", "buy", {"marketplace": marketplace, "listing": egress_listing, "payment": world["coin"], **window}),
                    Command("asset", "redeem", {"ingress": Result(0, "asset"), "egress": Result(1, "asset"), "public_key": bytes(256)}),
                ],
            )
        )
        assert effects.ok, effects.error
        assert effects.touches_shared  # marketplace involved -> consensus path
