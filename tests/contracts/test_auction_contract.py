"""Ledger-level sealed-bid auctions: escrow, settle, refunds, reverts."""

import random

import pytest

from repro.contracts.asset import ASSET_TYPE, AssetContract
from repro.contracts.coin import CoinContract, coin_balance
from repro.contracts.market import AUCTION_TYPE, BID_TYPE, LISTING_TYPE, MarketContract
from repro.controlplane.pki import CpPki
from repro.ledger.accounts import Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.transactions import Command, Result, Transaction
from repro.marketdata import MarketIndexer
from repro.scion.addresses import IsdAs

AS_ID = IsdAs(1, 42)
WINDOW = (1000, 1000 + 600)
FUNDING = sui_to_mist(1)


@pytest.fixture
def world():
    """Ledger + marketplace + a registered seller AS and an open auction."""
    rng = random.Random(11)
    pki = CpPki(seed=11)
    ledger = Ledger()
    ledger.register_contract(CoinContract())
    ledger.register_contract(AssetContract(pki))
    ledger.register_contract(MarketContract())

    seller = Account.generate(rng, "as")
    certificate = pki.issue_certificate(AS_ID, seller.signing_key.public)
    proof = seller.signing_key.sign(seller.address.encode(), rng)
    registered = ledger.execute(
        Transaction(
            seller.address,
            [
                Command(
                    "asset",
                    "register_as",
                    {
                        "certificate": certificate,
                        "commitment": proof.commitment,
                        "response": proof.response,
                    },
                )
            ],
        )
    )
    assert registered.ok, registered.error
    token = registered.returns[0]["token"]
    created = ledger.execute(
        Transaction(seller.address, [Command("market", "create_marketplace", {})])
    )
    marketplace = created.returns[0]["marketplace"]
    assert ledger.execute(
        Transaction(
            seller.address,
            [Command("market", "register_seller", {"marketplace": marketplace})],
        )
    ).ok
    return {
        "rng": rng,
        "ledger": ledger,
        "seller": seller,
        "token": token,
        "marketplace": marketplace,
    }


def open_auction(world, bandwidth_kbps=1000, reserve=20, share_cap=None, min_bw=100):
    effects = world["ledger"].execute(
        Transaction(
            world["seller"].address,
            [
                Command(
                    "asset",
                    "issue",
                    {
                        "token": world["token"],
                        "bandwidth_kbps": bandwidth_kbps,
                        "start": WINDOW[0],
                        "expiry": WINDOW[1],
                        "interface": 1,
                        "is_ingress": True,
                        "granularity": 60,
                        "min_bandwidth_kbps": min_bw,
                    },
                ),
                Command(
                    "market",
                    "create_auction",
                    {
                        "marketplace": world["marketplace"],
                        "asset": Result(0, "asset"),
                        "reserve_micromist_per_unit": reserve,
                        "share_cap_kbps": share_cap,
                    },
                ),
            ],
        )
    )
    assert effects.ok, effects.error
    return effects.returns[1]["auction"]


def bidder(world, name):
    account = Account.generate(world["rng"], name)
    funded = world["ledger"].execute(
        Transaction(account.address, [Command("coin", "mint", {"amount": FUNDING})])
    )
    return account, funded.returns[0]["coin"]


def place_bid(world, account, coin, auction, bandwidth_kbps, price):
    return world["ledger"].execute(
        Transaction(
            account.address,
            [
                Command(
                    "market",
                    "place_bid",
                    {
                        "marketplace": world["marketplace"],
                        "auction": auction,
                        "bandwidth_kbps": bandwidth_kbps,
                        "price_micromist_per_unit": price,
                        "payment": coin,
                    },
                )
            ],
        )
    )


def settle(world, auction, supply_kbps=None):
    return world["ledger"].execute(
        Transaction(
            world["seller"].address,
            [
                Command(
                    "market",
                    "settle_auction",
                    {
                        "marketplace": world["marketplace"],
                        "auction": auction,
                        "supply_kbps": supply_kbps,
                    },
                )
            ],
        )
    )


class TestPlaceBid:
    def test_escrows_the_maximum_payment(self, world):
        auction = open_auction(world)
        account, coin = bidder(world, "alice")
        effects = place_bid(world, account, coin, auction, 400, 90)
        assert effects.ok, effects.error
        # escrow = ceil(400 kbps * 600 s * 90 / 1e6) = 22 MIST
        assert effects.returns[0]["escrow_mist"] == 22
        assert coin_balance(world["ledger"], account.address) == FUNDING - 22

    def test_rejects_bandwidth_outside_asset_bounds(self, world):
        auction = open_auction(world, bandwidth_kbps=1000, min_bw=100)
        account, coin = bidder(world, "alice")
        assert "outside" in place_bid(world, account, coin, auction, 99, 50).error
        assert "outside" in place_bid(world, account, coin, auction, 1001, 50).error

    def test_seller_cannot_shill_bid_their_own_auction(self, world):
        """A riskless seller bid would inflate the uniform clearing price."""
        auction = open_auction(world)
        funded = world["ledger"].execute(
            Transaction(
                world["seller"].address,
                [Command("coin", "mint", {"amount": FUNDING})],
            )
        )
        effects = place_bid(
            world, world["seller"], funded.returns[0]["coin"], auction, 400, 90
        )
        assert not effects.ok
        assert "seller cannot bid" in effects.error

    def test_rejects_insufficient_escrow(self, world):
        auction = open_auction(world)
        account, coin = bidder(world, "alice")
        broke = place_bid(world, account, coin, auction, 1000, 10**10)
        assert "insufficient escrow" in broke.error
        # The abort rolled the coin deduction back.
        assert coin_balance(world["ledger"], account.address) == FUNDING


class TestSettle:
    def test_uniform_price_awards_and_refunds_atomically(self, world):
        auction = open_auction(world, bandwidth_kbps=1000, reserve=20)
        people = []
        for name, bw, price in (("alice", 400, 90), ("bob", 400, 70), ("carol", 400, 50)):
            account, coin = bidder(world, name)
            assert place_bid(world, account, coin, auction, bw, price).ok
            people.append(account)
        effects = settle(world, auction)
        assert effects.ok, effects.error
        result = effects.returns[0]
        # carol's losing 50 sets the price; alice and bob pay it.
        assert result["clearing_price_micromist"] == 50
        assert [w["bidder"] for w in result["winners"]] == [
            people[0].address,
            people[1].address,
        ]
        paid = -(-400 * 600 * 50 // 1_000_000)  # 12 MIST each
        ledger = world["ledger"]
        assert coin_balance(ledger, people[0].address) == FUNDING - paid
        assert coin_balance(ledger, people[1].address) == FUNDING - paid
        assert coin_balance(ledger, people[2].address) == FUNDING  # full refund
        assert result["proceeds_mist"] == 2 * paid
        assert coin_balance(ledger, world["seller"].address) == 2 * paid
        # Money is conserved across escrow, refunds and proceeds.
        total = sum(coin_balance(ledger, p.address) for p in people)
        assert total + 2 * paid == 3 * FUNDING
        # Winners own their carved assets; the 200 kbps remainder is
        # re-listed at the reserve price.
        for winner, account in zip(result["winners"], people[:2]):
            asset = ledger.get_object(winner["asset"])
            assert asset.type_tag == ASSET_TYPE
            assert asset.owner == account.address
            assert asset.payload["bandwidth_kbps"] == 400
        indexer = MarketIndexer(ledger, world["marketplace"])
        indexer.sync()
        remainder = indexer.listing(result["listing"])
        assert remainder.bandwidth_kbps == 200
        assert remainder.price_micromist_per_unit == 20

    def test_zero_bids_reverts_window_to_posted_price(self, world):
        auction = open_auction(world, bandwidth_kbps=1000, reserve=35)
        effects = settle(world, auction)
        assert effects.ok, effects.error
        result = effects.returns[0]
        assert result["winners"] == [] and result["awarded_kbps"] == 0
        indexer = MarketIndexer(world["ledger"], world["marketplace"])
        indexer.sync()
        listing = indexer.listing(result["listing"])
        assert listing.bandwidth_kbps == 1000
        assert listing.price_micromist_per_unit == 35  # the reserve
        assert (listing.start, listing.expiry) == WINDOW

    def test_all_bids_below_reserve_refunds_everyone_and_reverts(self, world):
        auction = open_auction(world, bandwidth_kbps=1000, reserve=50)
        accounts = []
        for name, price in (("alice", 30), ("bob", 49)):
            account, coin = bidder(world, name)
            assert place_bid(world, account, coin, auction, 400, price).ok
            accounts.append(account)
        effects = settle(world, auction)
        assert effects.ok, effects.error
        result = effects.returns[0]
        assert result["winners"] == []
        assert {l["reason"] for l in result["losers"]} == {"below reserve"}
        for account in accounts:
            assert coin_balance(world["ledger"], account.address) == FUNDING
        assert result["listing"] is not None
        assert result["clearing_price_micromist"] == 50

    def test_tie_bids_at_the_clearing_price_break_by_arrival(self, world):
        """Deterministic tie-break: earlier on-chain bid wins, pays the tie."""
        auction = open_auction(world, bandwidth_kbps=600, min_bw=100, reserve=20)
        first, first_coin = bidder(world, "first")
        second, second_coin = bidder(world, "second")
        assert place_bid(world, first, first_coin, auction, 600, 70).ok
        assert place_bid(world, second, second_coin, auction, 600, 70).ok
        effects = settle(world, auction)
        result = effects.returns[0]
        assert [w["bidder"] for w in result["winners"]] == [first.address]
        assert result["losers"][0]["bidder"] == second.address
        assert result["clearing_price_micromist"] == 70
        assert coin_balance(world["ledger"], second.address) == FUNDING

    def test_supply_clamp_shrinks_awards_and_lists_remainder(self, world):
        """The headroom-loss path: the AS settles with supply < offered."""
        auction = open_auction(world, bandwidth_kbps=1000, reserve=20)
        alice, alice_coin = bidder(world, "alice")
        bob, bob_coin = bidder(world, "bob")
        assert place_bid(world, alice, alice_coin, auction, 500, 90).ok
        assert place_bid(world, bob, bob_coin, auction, 300, 80).ok
        effects = settle(world, auction, supply_kbps=400)
        assert effects.ok, effects.error
        result = effects.returns[0]
        assert [w["bidder"] for w in result["winners"]] == [bob.address]
        assert result["awarded_kbps"] == 300
        indexer = MarketIndexer(world["ledger"], world["marketplace"])
        indexer.sync()
        assert indexer.listing(result["listing"]).bandwidth_kbps == 700

    def test_whole_asset_award_leaves_no_listing(self, world):
        auction = open_auction(world, bandwidth_kbps=600, min_bw=100)
        account, coin = bidder(world, "alice")
        assert place_bid(world, account, coin, auction, 600, 90).ok
        result = settle(world, auction).returns[0]
        assert result["listing"] is None
        assert result["awarded_kbps"] == 600

    def test_only_the_seller_may_settle(self, world):
        auction = open_auction(world)
        outsider, _ = bidder(world, "mallory")
        effects = world["ledger"].execute(
            Transaction(
                outsider.address,
                [
                    Command(
                        "market",
                        "settle_auction",
                        {"marketplace": world["marketplace"], "auction": auction},
                    )
                ],
            )
        )
        assert not effects.ok
        assert "not the seller" in effects.error

    def test_supply_above_asset_bandwidth_aborts(self, world):
        auction = open_auction(world, bandwidth_kbps=1000)
        effects = settle(world, auction, supply_kbps=1001)
        assert not effects.ok
        assert "supply" in effects.error

    def test_double_settle_aborts(self, world):
        auction = open_auction(world)
        assert settle(world, auction).ok
        again = settle(world, auction)
        assert not again.ok

    def test_settle_destroys_auction_and_bid_objects(self, world):
        auction = open_auction(world)
        account, coin = bidder(world, "alice")
        placed = place_bid(world, account, coin, auction, 400, 90)
        bid_id = placed.returns[0]["bid"]
        assert settle(world, auction).ok
        ledger = world["ledger"]
        assert auction not in ledger.objects
        assert bid_id not in ledger.objects
        assert not [o for o in ledger.objects.values() if o.type_tag == AUCTION_TYPE]
        assert not [o for o in ledger.objects.values() if o.type_tag == BID_TYPE]

    def test_unregistered_seller_cannot_open_auction(self, world):
        rng = world["rng"]
        outsider = Account.generate(rng, "outsider")
        effects = world["ledger"].execute(
            Transaction(
                outsider.address,
                [
                    Command(
                        "market",
                        "create_auction",
                        {
                            "marketplace": world["marketplace"],
                            "asset": "nonexistent",
                            "reserve_micromist_per_unit": 10,
                        },
                    )
                ],
            )
        )
        assert not effects.ok
        assert "seller not registered" in effects.error
