"""Stateful property test: market invariants under random operation sequences.

Hypothesis drives random interleavings of buys (all four split variants),
cancellations and re-listings against one marketplace, checking after every
step that:

* **volume conservation** — the total kbps-seconds across listed assets,
  host-owned assets and redeemed (burned) assets never changes;
* **money conservation** — MIST only moves between buyer coins and seller
  coins, never appears or vanishes;
* **custody** — every listed asset is owned by the marketplace, every
  listing points at an existing asset.
"""

import random

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.contracts.asset import ASSET_TYPE, REQUEST_TYPE, AssetContract, asset_units
from repro.contracts.coin import CoinContract, coin_balance
from repro.contracts.market import LISTING_TYPE, MarketContract
from repro.controlplane.pki import CpPki
from repro.ledger.accounts import COIN_TYPE, Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.objects import Ownership
from repro.ledger.transactions import Command, Transaction
from repro.scion.addresses import IsdAs

GRANULARITY = 60
ASSET_START = 0
ASSET_EXPIRY = 3600
ASSET_BW = 1_000_000
MIN_BW = 100


class MarketMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self) -> None:
        rng = random.Random(99)
        pki = CpPki(seed=99)
        self.ledger = Ledger()
        self.ledger.register_contract(CoinContract())
        self.ledger.register_contract(AssetContract(pki))
        self.ledger.register_contract(MarketContract())
        self.seller = Account.generate(rng, "seller")
        self.buyer = Account.generate(rng, "buyer")
        cert = pki.issue_certificate(IsdAs(1, 9), self.seller.signing_key.public)
        proof = self.seller.signing_key.sign(self.seller.address.encode(), rng)
        token = self._run(
            self.seller, "asset", "register_as",
            certificate=cert, commitment=proof.commitment, response=proof.response,
        ).returns[0]["token"]
        self.coin = self._run(
            self.buyer, "coin", "mint", amount=sui_to_mist(1000)
        ).returns[0]["coin"]
        self.marketplace = self._run(
            self.seller, "market", "create_marketplace"
        ).returns[0]["marketplace"]
        self._run(self.seller, "market", "register_seller", marketplace=self.marketplace)
        asset = self._run(
            self.seller, "asset", "issue",
            token=token, bandwidth_kbps=ASSET_BW, start=ASSET_START,
            expiry=ASSET_EXPIRY, interface=1, is_ingress=True,
            granularity=GRANULARITY, min_bandwidth_kbps=MIN_BW,
        ).returns[0]["asset"]
        self._run(
            self.seller, "market", "create_listing",
            marketplace=self.marketplace, asset=asset, price_micromist_per_unit=50,
        )
        self.initial_volume = ASSET_BW * (ASSET_EXPIRY - ASSET_START)
        self.initial_money = coin_balance(self.ledger, self.buyer.address)
        self.burned_volume = 0

    # -- helpers ---------------------------------------------------------------

    def _run(self, account, contract, function, **args):
        effects = self.ledger.execute(
            Transaction(account.address, [Command(contract, function, args)])
        )
        assert effects.ok, f"{function}: {effects.error}"
        return effects

    def _try(self, account, contract, function, **args):
        return self.ledger.execute(
            Transaction(account.address, [Command(contract, function, args)])
        )

    def _listings(self):
        return [
            obj for obj in self.ledger.objects.values()
            if obj.type_tag == LISTING_TYPE
        ]

    # -- rules -----------------------------------------------------------------

    @rule(
        start_slot=st.integers(0, 58),
        slots=st.integers(1, 10),
        bw=st.sampled_from([100, 4_000, 50_000, 999_900]),
    )
    def buy_rectangle(self, start_slot, slots, bw):
        start = ASSET_START + start_slot * GRANULARITY
        expiry = min(start + slots * GRANULARITY, ASSET_EXPIRY)
        for listing in self._listings():
            asset = self.ledger.objects.get(listing.payload["asset"])
            if asset is None:
                continue
            payload = asset.payload
            if not (payload["start"] <= start and expiry <= payload["expiry"]):
                continue
            if payload["bandwidth_kbps"] < bw:
                continue
            remainder = payload["bandwidth_kbps"] - bw
            if 0 < remainder < MIN_BW:
                continue
            self._try(
                self.buyer, "market", "buy",
                marketplace=self.marketplace, listing=listing.object_id,
                start=start, expiry=expiry, bandwidth_kbps=bw, payment=self.coin,
            )
            return

    @rule()
    def cancel_and_relist(self):
        listings = self._listings()
        if not listings:
            return
        listing = listings[0]
        cancelled = self._try(
            self.seller, "market", "cancel_listing",
            marketplace=self.marketplace, listing=listing.object_id,
        )
        if not cancelled.ok:
            return
        self._run(
            self.seller, "market", "create_listing",
            marketplace=self.marketplace, asset=cancelled.returns[0]["asset"],
            price_micromist_per_unit=75,
        )

    @rule()
    def buyer_fuses_adjacent_assets(self):
        owned = self.ledger.objects_owned_by(self.buyer.address, ASSET_TYPE)
        for a in owned:
            for b in owned:
                if a is b:
                    continue
                same = all(
                    a.payload[k] == b.payload[k]
                    for k in ("interface", "is_ingress", "bandwidth_kbps")
                )
                if same and a.payload["expiry"] == b.payload["start"]:
                    self._try(
                        self.buyer, "asset", "fuse_time",
                        first=a.object_id, second=b.object_id,
                    )
                    return

    # -- invariants --------------------------------------------------------------

    @invariant()
    def volume_is_conserved(self):
        if not hasattr(self, "ledger"):
            return
        total = sum(
            asset_units(obj.payload)
            for obj in self.ledger.objects.values()
            if obj.type_tag == ASSET_TYPE
        )
        assert total == self.initial_volume

    @invariant()
    def money_is_conserved(self):
        if not hasattr(self, "ledger"):
            return
        total = sum(
            obj.payload["balance"]
            for obj in self.ledger.objects.values()
            if obj.type_tag == COIN_TYPE
        )
        assert total == self.initial_money

    @invariant()
    def listings_are_consistent(self):
        if not hasattr(self, "ledger"):
            return
        for listing in self._listings():
            asset = self.ledger.objects.get(listing.payload["asset"])
            assert asset is not None, "listing points at a missing asset"
            assert asset.ownership is Ownership.OWNED
            assert asset.owner == self.marketplace


MarketMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestMarketStateful = MarketMachine.TestCase
