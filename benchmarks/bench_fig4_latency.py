"""Figure 4: end-to-end latency of atomic buy-and-redeem vs path length.

100 purchases per path length h in {1,2,4,8,16}; request latency is the
consensus-path purchase transaction, response latency ends when the slowest
AS's fast-path delivery lands.  Reports the five-number box summaries the
paper plots (whiskers at the 5th/95th percentiles) and the fraction of
totals under 3 s (the paper reports 83 %).
"""

import argparse
import time

import pytest

try:
    from benchmarks.conftest import bench_result, deploy_chain, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, deploy_chain, report, write_bench_json

from repro.analysis import BoxStats, fraction_below, render_comparison
from repro.controlplane import purchase_path
from repro.scion.paths import as_crossings

HOPS = (1, 2, 4, 8, 16)
RUNS = 40  # per path length; 100 in the paper (reduced for wall-clock; same estimator)


def run_series(hops: int, runs: int = RUNS):
    deployment, path = deploy_chain(hops)
    crossings = as_crossings(path)[:hops]
    # All purchases share one window: after the first worst-case split the
    # remaining buys only split bandwidth, so the market does not fragment.
    start = int(deployment.clock.now()) + 3600
    results = []
    for _ in range(runs):
        host = deployment.new_host(funding_sui=1000)
        outcome = purchase_path(
            deployment, host, crossings, start=start, expiry=start + 600,
            bandwidth_kbps=4000,
        )
        results.append(outcome.latency)
    return results


def _fig4_report_impl():
    header = ["h", "metric", "p5", "q1", "median", "q3", "p95", "mean"]
    rows = []
    all_totals = {}
    for hops in HOPS:
        latencies = run_series(hops)
        for metric, values in (
            ("request", [l.request for l in latencies]),
            ("response", [l.response for l in latencies]),
            ("total", [l.total for l in latencies]),
        ):
            stats = BoxStats.of(values)
            rows.append([hops, *stats.row(metric)[0:]])
        all_totals[hops] = [l.total for l in latencies]

    totals_flat = [t for values in all_totals.values() for t in values]
    under3 = fraction_below(totals_flat, 3.0)
    medians = {hops: BoxStats.of(values).median for hops, values in all_totals.items()}
    spread = max(medians.values()) - min(medians.values())

    text = render_comparison(
        header,
        rows,
        title=f"Figure 4 — atomic buy-and-redeem latency, {RUNS} runs per h (seconds)",
        note=(
            f"total < 3 s in {under3:.0%} of runs (paper: 83%); "
            f"median total varies only {spread:.2f}s across h=1..16 "
            "(paper: 'largely independent of the length of the path')."
        ),
    )
    report("fig4_latency", text)

    # Shape assertions.
    assert under3 > 0.5, "most purchases should complete within 3 s"
    assert spread < 1.0, "latency should be largely independent of path length"
    for hops in HOPS:
        request = BoxStats.of([l for l in all_totals[hops]]).median
        assert request < 5.0


def test_bench_single_purchase_latency_sampling(benchmark):
    """Time the latency-model sampling itself (committee order statistics)."""
    from repro.ledger.committee import Committee

    committee = Committee(seed=9)
    benchmark(committee.consensus_latency)


def test_fig4_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_fig4_report_impl, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hops", type=int, nargs="*", default=[2, 4],
                        help="path lengths to sample")
    parser.add_argument("--runs", type=int, default=5, help="purchases per path length")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    results = []
    for hops in args.hops:
        began = time.perf_counter()
        latencies = run_series(hops, runs=args.runs)
        elapsed = time.perf_counter() - began
        totals = sorted(outcome.total for outcome in latencies)
        row = bench_result(
            "fig4_atomic_purchase",
            {"hops": hops, "runs": args.runs},
            ops_per_sec=args.runs / elapsed,  # wall-clock purchases/sec
            p50=totals[(len(totals) - 1) // 2],  # simulated end-to-end seconds
            p99=totals[min(len(totals) - 1, round(0.99 * (len(totals) - 1)))],
        )
        results.append(row)
        print(
            f"h={hops}: median total {row['p50']:.2f}s (simulated), "
            f"{row['ops_per_sec']:.1f} purchases/s (wall)"
        )
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
