"""Shard-engine throughput: multiprocess workers vs in-process sharding.

Bulk-loads the same tracked reservation stream through the in-process
:class:`ShardedCalendar` and through multiprocess engines with 1, 2 and
4 workers, then probes each with a vectorized ``bulk_peak`` sweep.  The
stream spans hundreds of shards, so the multiprocess backend can rebuild
shard step-functions on all workers concurrently while the parent
assembles the top-level commitment records.

Floor (CI): >= 2x bulk ``commit_batch`` throughput at 4 workers vs the
in-process sharded calendar.  Only enforced on machines with >= 4 CPU
cores — with fewer cores the workers time-slice one core and the IPC
overhead has nothing to amortize against, so the ratio measures the
scheduler, not the engine.

Usage: PYTHONPATH=src python benchmarks/bench_shard_engine.py
   or: PYTHONPATH=src python benchmarks/bench_shard_engine.py --smoke
"""

import argparse
import os
import time

import numpy as np

try:
    from benchmarks.conftest import bench_result, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, report, write_bench_json

from repro.admission import ShardedCalendar
from repro.analysis import render_comparison
from repro.shardengine import EngineSpec, build_engine

SHARD_SECONDS = 300.0
HORIZON = 86_400.0  # 288 shards: plenty of stripes for any worker count
CAPACITY_KBPS = 10**9
KEY = ("bench", 0, True)
WORKER_COUNTS = (1, 2, 4)
FLOOR_SPEEDUP = 2.0
FLOOR_WORKERS = 4
FLOOR_MIN_CPUS = 4

FULL_ROWS = 1_000_000
FULL_BATCH = 100_000
SMOKE_ROWS = 20_000
SMOKE_BATCH = 5_000
PROBE_MULTIPLIER = 0.1  # bulk_peak probes per committed row


def _workload(total_rows: int, seed: int = 42):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0.0, HORIZON - 3600.0, total_rows)
    ends = starts + rng.uniform(30.0, 3600.0, total_rows)
    bandwidths = rng.integers(1, 500, total_rows)
    return bandwidths, starts, ends


def _probes(total_rows: int, seed: int = 43):
    rng = np.random.default_rng(seed)
    count = max(1000, int(total_rows * PROBE_MULTIPLIER))
    starts = rng.uniform(0.0, HORIZON - 7200.0, count)
    return starts, starts + rng.uniform(60.0, 7200.0, count)


def _load(calendar, workload, batch_rows: int) -> dict:
    """Tracked commit_batch stream + bulk_peak sweep -> throughput dict."""
    bandwidths, starts, ends = workload
    began = time.perf_counter()
    for cursor in range(0, starts.size, batch_rows):
        chunk = slice(cursor, cursor + batch_rows)
        calendar.commit_batch(
            bandwidths[chunk], starts[chunk], ends[chunk], tag="bench"
        )
    commit_seconds = time.perf_counter() - began
    probe_starts, probe_ends = _probes(starts.size)
    began = time.perf_counter()
    peaks = calendar.bulk_peak(probe_starts, probe_ends)
    probe_seconds = time.perf_counter() - began
    assert int(peaks.max()) > 0  # the load actually landed
    return {
        "commit_rows_per_sec": starts.size / commit_seconds,
        "probe_windows_per_sec": probe_starts.size / probe_seconds,
    }


def shard_engine_comparison(total_rows: int, batch_rows: int):
    """Run every backend over the same stream; returns (table_rows, metrics)."""
    workload = _workload(total_rows)
    metrics: dict[str, dict] = {}

    calendar = ShardedCalendar(CAPACITY_KBPS, shard_seconds=SHARD_SECONDS)
    metrics["in-process"] = _load(calendar, workload, batch_rows)

    for workers in WORKER_COUNTS:
        spec = EngineSpec(
            kind="multiprocess",
            shard_seconds=SHARD_SECONDS,
            num_workers=workers,
            # The bench measures steady-state load throughput, not
            # recovery: keep snapshots out of the timed window.
            checkpoint_ops=10**9,
            checkpoint_rows=10**15,
        )
        engine = build_engine(spec)
        try:
            metrics[f"mp-{workers}"] = _load(
                engine.calendar(KEY, CAPACITY_KBPS), workload, batch_rows
            )
        finally:
            engine.close()

    base = metrics["in-process"]["commit_rows_per_sec"]
    rows = [
        [
            label,
            f"{stats['commit_rows_per_sec']:,.0f}",
            f"{stats['commit_rows_per_sec'] / base:.2f}x",
            f"{stats['probe_windows_per_sec']:,.0f}",
        ]
        for label, stats in metrics.items()
    ]
    return rows, metrics


def _render(rows, scale_note: str) -> str:
    return render_comparison(
        ["backend", "commit rows/s", "vs in-process", "bulk_peak windows/s"],
        rows,
        title=f"Shard-engine throughput {scale_note} — tracked commit_batch "
        "stream + vectorized peak sweep",
        note=f"floor: mp-{FLOOR_WORKERS} >= {FLOOR_SPEEDUP:.0f}x in-process "
        f"commit throughput, enforced when cpu_count >= {FLOOR_MIN_CPUS} "
        f"(this machine: {os.cpu_count()} cores).",
    )


def floor_applies() -> bool:
    return (os.cpu_count() or 1) >= FLOOR_MIN_CPUS


def enforce_floor(metrics: dict) -> None:
    speedup = (
        metrics[f"mp-{FLOOR_WORKERS}"]["commit_rows_per_sec"]
        / metrics["in-process"]["commit_rows_per_sec"]
    )
    assert speedup >= FLOOR_SPEEDUP, (
        f"mp-{FLOOR_WORKERS} commit_batch speedup {speedup:.2f}x is below "
        f"the {FLOOR_SPEEDUP:.0f}x floor"
    )


def _json_rows(metrics: dict, total_rows: int, batch_rows: int) -> list[dict]:
    return [
        bench_result(
            f"shard_engine_{label}",
            {"rows": total_rows, "batch": batch_rows,
             "shard_seconds": SHARD_SECONDS, "cpus": os.cpu_count()},
            ops_per_sec=stats["commit_rows_per_sec"],
        )
        | {"probe_windows_per_sec": stats["probe_windows_per_sec"]}
        for label, stats in metrics.items()
    ]


def test_shard_engine_smoke_report(benchmark):
    """CI-sized comparison; the 2x floor applies only on >= 4-core hosts."""

    def run():
        rows, metrics = shard_engine_comparison(SMOKE_ROWS, SMOKE_BATCH)
        report("bench_shard_engine_smoke", _render(rows, "(smoke)"))
        if floor_applies():
            enforce_floor(metrics)

    benchmark.pedantic(run, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run: {SMOKE_ROWS:,} tracked rows per backend "
        f"instead of {FULL_ROWS:,}",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write machine-readable results to PATH"
    )
    parser.add_argument(
        "--no-floor",
        action="store_true",
        help="skip the 2x speedup assertion even on >= 4-core machines",
    )
    args = parser.parse_args()
    total_rows = SMOKE_ROWS if args.smoke else FULL_ROWS
    batch_rows = SMOKE_BATCH if args.smoke else FULL_BATCH
    scale_note = "(smoke)" if args.smoke else "(10^6 tracked reservations)"
    rows, metrics = shard_engine_comparison(total_rows, batch_rows)
    report("bench_shard_engine", _render(rows, scale_note))
    write_bench_json(args.json, _json_rows(metrics, total_rows, batch_rows))
    if args.no_floor:
        print("floor check skipped (--no-floor)")
    elif floor_applies():
        enforce_floor(metrics)
        print(f"floor ok: mp-{FLOOR_WORKERS} >= {FLOOR_SPEEDUP:.0f}x in-process")
    else:
        print(
            f"floor not applicable: {os.cpu_count()} cores < {FLOOR_MIN_CPUS} "
            "(workers would time-slice a single core)"
        )


if __name__ == "__main__":
    main()
