"""Admission throughput: decisions/sec against loaded capacity calendars.

The admission hot path must keep up with market-scale request rates: an AS
fielding batch purchases decides thousands of windows per poll.  This bench
loads calendars with 10k..1M concurrent reservations (bulk-built via
``commit_batch``) and measures

* the **vectorized bulk path** (``bulk_admissible``): one numpy pass over a
  whole batch of windows — the acceptance bar is >= 100k decisions/sec;
* the **scalar path** (``peak_commitment`` per window) for comparison;
* sequential **FCFS admit** throughput (screen + commit).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_admission.py -q
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import report

from repro.admission import CapacityCalendar, FirstComeFirstServed
from repro.admission.policy import AdmissionRequest
from repro.analysis import render_comparison

HORIZON = 1_000_000.0  # seconds of calendar time the reservations spread over
CAPACITY_KBPS = 100_000_000  # 100 Gbps interface
QUERY_BATCH = 200_000
MIN_BULK_DECISIONS_PER_SEC = 100_000


def _loaded_calendar(num_reservations: int, seed: int = 7) -> CapacityCalendar:
    rng = np.random.default_rng(seed)
    calendar = CapacityCalendar(CAPACITY_KBPS)
    starts = rng.uniform(0, HORIZON, num_reservations)
    durations = rng.uniform(60, 7200, num_reservations)
    bandwidths = rng.integers(100, 4000, num_reservations)
    calendar.commit_batch(bandwidths, starts, starts + durations, track=False)
    return calendar


def _query_windows(count: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, HORIZON, count)
    return starts, starts + rng.uniform(60, 7200, count)


def _decisions_per_sec(callable_, decisions: int) -> float:
    began = time.perf_counter()
    callable_()
    elapsed = time.perf_counter() - began
    return decisions / elapsed


def test_bench_bulk_admission_report():
    rows = []
    bulk_rates = {}
    for size in (10_000, 100_000, 1_000_000):
        calendar = _loaded_calendar(size)
        starts, ends = _query_windows(QUERY_BATCH)
        calendar.bulk_peak(starts[:10], ends[:10])  # compile outside the timer
        bulk = _decisions_per_sec(
            lambda: calendar.bulk_admissible(4000, starts, ends), QUERY_BATCH
        )
        scalar_n = 2_000
        scalar = _decisions_per_sec(
            lambda: [
                calendar.peak_commitment(s, e)
                for s, e in zip(starts[:scalar_n], ends[:scalar_n])
            ],
            scalar_n,
        )
        bulk_rates[size] = bulk
        rows.append(
            [
                f"{size:,}",
                f"{calendar.boundary_count:,}",
                f"{bulk:,.0f}",
                f"{scalar:,.0f}",
                f"{bulk / scalar:.0f}x",
            ]
        )
    table = render_comparison(
        ["reservations", "boundaries", "bulk dec/s", "scalar dec/s", "speedup"],
        rows,
        title="Admission decisions/sec vs calendar load "
        f"({QUERY_BATCH:,}-window batches, 100 Gbps interface)",
        note="bulk = vectorized searchsorted+reduceat over the compiled step "
        "function; scalar = per-window bisect.",
    )
    report("bench_admission", table)
    assert min(bulk_rates.values()) >= MIN_BULK_DECISIONS_PER_SEC, bulk_rates


def test_bench_bulk_admissible(benchmark):
    calendar = _loaded_calendar(100_000)
    starts, ends = _query_windows(QUERY_BATCH)
    result = benchmark(lambda: calendar.bulk_admissible(4000, starts, ends))
    assert result.shape == starts.shape


def test_bench_scalar_peak(benchmark):
    calendar = _loaded_calendar(100_000)
    starts, ends = _query_windows(512)
    benchmark(
        lambda: [calendar.peak_commitment(s, e) for s, e in zip(starts, ends)]
    )


def test_bench_fcfs_sequential_admit(benchmark):
    """Screen-and-commit throughput for a policy admitting live requests."""
    starts, ends = _query_windows(512)
    requests = [
        AdmissionRequest(4000, float(s), float(e), buyer=f"b{i}")
        for i, (s, e) in enumerate(zip(starts, ends))
    ]
    policy = FirstComeFirstServed()

    def run():
        calendar = _loaded_calendar(10_000)
        return policy.admit_batch(calendar, requests)

    decisions = benchmark(run)
    assert len(decisions) == len(requests)
