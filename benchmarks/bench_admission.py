"""Admission throughput: decisions/sec against loaded capacity calendars.

The admission hot path must keep up with market-scale request rates: an AS
fielding batch purchases decides thousands of windows per poll.  This bench
loads calendars with 10k..1M concurrent reservations (bulk-built via
``commit_batch``) and measures

* the **vectorized bulk path** (``bulk_admissible``): one numpy pass over a
  whole batch of windows — the acceptance bar is >= 100k decisions/sec;
* the **scalar path** (``peak_commitment`` per window) for comparison;
* sequential **FCFS admit** throughput (screen + commit);
* **sharded vs monolithic** calendars: a 10^7-reservation ``commit_batch``
  bulk load plus a mixed admit/release/expire churn phase against 10^6
  tracked reservations — the per-link mutation path time-sharding exists
  for (acceptance bar: >= 2x churn speedup).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_admission.py -q
  or: PYTHONPATH=src python benchmarks/bench_admission.py --smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

try:
    from benchmarks.conftest import (
        bench_result,
        measure_ab,
        measure_op,
        report,
        write_bench_json,
    )
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_ab, measure_op, report, write_bench_json

from repro.admission import (
    AdmissionController,
    CapacityCalendar,
    FirstComeFirstServed,
    ShardedCalendar,
)
from repro.admission.policy import AdmissionRequest
from repro.analysis import render_comparison
from repro.telemetry import get_registry

HORIZON = 1_000_000.0  # seconds of calendar time the reservations spread over
CAPACITY_KBPS = 100_000_000  # 100 Gbps interface
QUERY_BATCH = 200_000
MIN_BULK_DECISIONS_PER_SEC = 100_000


def _loaded_calendar(num_reservations: int, seed: int = 7) -> CapacityCalendar:
    rng = np.random.default_rng(seed)
    calendar = CapacityCalendar(CAPACITY_KBPS)
    starts = rng.uniform(0, HORIZON, num_reservations)
    durations = rng.uniform(60, 7200, num_reservations)
    bandwidths = rng.integers(100, 4000, num_reservations)
    calendar.commit_batch(bandwidths, starts, starts + durations, track=False)
    return calendar


def _query_windows(count: int, seed: int = 11):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, HORIZON, count)
    return starts, starts + rng.uniform(60, 7200, count)


def _decisions_per_sec(callable_, decisions: int) -> float:
    began = time.perf_counter()
    callable_()
    elapsed = time.perf_counter() - began
    return decisions / elapsed


def test_bench_bulk_admission_report():
    rows = []
    bulk_rates = {}
    for size in (10_000, 100_000, 1_000_000):
        calendar = _loaded_calendar(size)
        starts, ends = _query_windows(QUERY_BATCH)
        calendar.bulk_peak(starts[:10], ends[:10])  # compile outside the timer
        bulk = _decisions_per_sec(
            lambda: calendar.bulk_admissible(4000, starts, ends), QUERY_BATCH
        )
        scalar_n = 2_000
        scalar = _decisions_per_sec(
            lambda: [
                calendar.peak_commitment(s, e)
                for s, e in zip(starts[:scalar_n], ends[:scalar_n])
            ],
            scalar_n,
        )
        bulk_rates[size] = bulk
        rows.append(
            [
                f"{size:,}",
                f"{calendar.boundary_count:,}",
                f"{bulk:,.0f}",
                f"{scalar:,.0f}",
                f"{bulk / scalar:.0f}x",
            ]
        )
    table = render_comparison(
        ["reservations", "boundaries", "bulk dec/s", "scalar dec/s", "speedup"],
        rows,
        title="Admission decisions/sec vs calendar load "
        f"({QUERY_BATCH:,}-window batches, 100 Gbps interface)",
        note="bulk = vectorized searchsorted+reduceat over the compiled step "
        "function; scalar = per-window bisect.",
    )
    report("bench_admission", table)
    assert min(bulk_rates.values()) >= MIN_BULK_DECISIONS_PER_SEC, bulk_rates


def test_bench_bulk_admissible(benchmark):
    calendar = _loaded_calendar(100_000)
    starts, ends = _query_windows(QUERY_BATCH)
    result = benchmark(lambda: calendar.bulk_admissible(4000, starts, ends))
    assert result.shape == starts.shape


def test_bench_scalar_peak(benchmark):
    calendar = _loaded_calendar(100_000)
    starts, ends = _query_windows(512)
    benchmark(
        lambda: [calendar.peak_commitment(s, e) for s, e in zip(starts, ends)]
    )


def test_bench_fcfs_sequential_admit(benchmark):
    """Screen-and-commit throughput for a policy admitting live requests."""
    starts, ends = _query_windows(512)
    requests = [
        AdmissionRequest(4000, float(s), float(e), buyer=f"b{i}")
        for i, (s, e) in enumerate(zip(starts, ends))
    ]
    policy = FirstComeFirstServed()

    def run():
        calendar = _loaded_calendar(10_000)
        return policy.admit_batch(calendar, requests)

    decisions = benchmark(run)
    assert len(decisions) == len(requests)


# -- sharded vs monolithic ----------------------------------------------------

SHARD_SECONDS = 86_400.0
SHARD_HORIZON = 100 * SHARD_SECONDS  # one hundred day-shards
MIN_CHURN_SPEEDUP = 2.0


def _reservations(count: int, seed: int, horizon: float = SHARD_HORIZON):
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, horizon, count)
    return (
        rng.integers(100, 4000, count),
        starts,
        starts + rng.uniform(60, 7200, count),
    )


def _timed(callable_) -> float:
    began = time.perf_counter()
    callable_()
    return time.perf_counter() - began


def _churn(calendar, handles: list, steps: int, admits: int, releases: int) -> None:
    """Deterministic mixed workload: expire + admit + targeted release.

    Each step advances ``now`` by a fifth of a shard (so expiry sweeps both
    inside shards and across whole-shard drops), admits fresh near-future
    reservations, and releases random live commitments — the per-link
    mutation mix a busy interface actually sees.
    """
    rng = np.random.default_rng(41)
    now = 0.0
    for _ in range(steps):
        now += SHARD_SECONDS / 5
        calendar.expire(now)
        handles[:] = [handle for handle in handles if handle.end > now]
        starts = now + rng.uniform(0, 7200, admits)
        durations = rng.uniform(60, 7200, admits)
        bandwidths = rng.integers(100, 4000, admits)
        for bandwidth, start, duration in zip(bandwidths, starts, durations):
            handles.append(
                calendar.admit(int(bandwidth), float(start), float(start + duration))
            )
        for _ in range(min(releases, len(handles))):
            position = int(rng.integers(0, len(handles)))
            handles[position], handles[-1] = handles[-1], handles[position]
            calendar.release(handles.pop().commitment_id)


def sharded_comparison(
    load_count: int,
    tracked_count: int,
    churn_steps: int = 3,
    churn_admits: int = 800,
    churn_releases: int = 400,
):
    """Bulk-load + churn timings for monolithic vs sharded calendars.

    Returns (table rows, metrics dict).  The bulk load is untracked (the
    scenario-generator mode); the churn phase runs against ``tracked_count``
    individually releasable commitments.
    """
    factories = {
        "monolithic": lambda: CapacityCalendar(CAPACITY_KBPS),
        "sharded": lambda: ShardedCalendar(CAPACITY_KBPS, shard_seconds=SHARD_SECONDS),
    }
    metrics: dict[str, dict[str, float]] = {name: {} for name in factories}
    probes = _reservations(1000, seed=3)
    loaded = {}
    for name, factory in factories.items():
        calendar = factory()
        load = _reservations(load_count, seed=23)
        metrics[name]["load"] = _timed(
            lambda: calendar.commit_batch(*load, track=False)
        )
        loaded[name] = calendar
    # The sharded bulk load must answer exactly like the monolithic one.
    expected = loaded["monolithic"].bulk_peak(probes[1], probes[2])
    if not np.array_equal(expected, loaded["sharded"].bulk_peak(probes[1], probes[2])):
        raise AssertionError("sharded bulk load diverged from monolithic")
    for name, factory in factories.items():
        calendar = factory()
        tracked = _reservations(tracked_count, seed=29)
        handles: list = []
        metrics[name]["tracked_load"] = _timed(
            lambda: handles.extend(calendar.commit_batch(*tracked, track=True))
        )
        metrics[name]["churn"] = _timed(
            lambda: _churn(calendar, handles, churn_steps, churn_admits, churn_releases)
        )
    rows = []
    for phase, label in (
        ("load", f"{load_count:,} commit_batch (untracked)"),
        ("tracked_load", f"{tracked_count:,} commit_batch (tracked)"),
        ("churn", f"churn: {churn_steps}x(expire+{churn_admits} admit+{churn_releases} release)"),
    ):
        mono, shard = metrics["monolithic"][phase], metrics["sharded"][phase]
        rows.append([label, f"{mono:.2f}s", f"{shard:.2f}s", f"{mono / shard:.1f}x"])
    return rows, metrics


def _sharded_report(rows, title_suffix: str) -> str:
    return render_comparison(
        ["phase", "monolithic", "sharded", "speedup"],
        rows,
        title="Sharded vs monolithic capacity calendars " + title_suffix,
        note=f"shard width {SHARD_SECONDS:.0f}s over a {SHARD_HORIZON / SHARD_SECONDS:.0f}-shard "
        "horizon; churn advances now by a fifth of a shard per step, mixing "
        "whole-shard expiry drops with point admits/releases.",
    )


def test_bench_sharded_vs_monolithic_report():
    rows, metrics = sharded_comparison(load_count=10_000_000, tracked_count=1_000_000)
    report(
        "bench_admission_sharded",
        _sharded_report(rows, "(10^7 bulk load, 10^6 tracked churn)"),
    )
    speedup = metrics["monolithic"]["churn"] / metrics["sharded"]["churn"]
    assert speedup >= MIN_CHURN_SPEEDUP, metrics


CONTROLLER_ADMITS = 20_000
CONTROLLER_ADMITS_SMOKE = 5_000


def controller_admit_stats(count: int, seed: int = 13) -> dict:
    """Sequential ``AdmissionController.admit_issue`` per-op stats.

    This is the telemetry-sensitive hot path: with a live registry every
    decision pays one counter increment, one histogram observation, and two
    ``perf_counter`` reads; with the null registry those collapse to a
    single boolean test.  ``tools/perf_guard.py`` runs this section with
    ``REPRO_TELEMETRY`` on and off and enforces the <5 % overhead bar —
    comparing **median per-op latency**, which is why this measures each
    admit individually (``measure_op``) instead of timing one long loop:
    a CPU-throttle window mid-run poisons total elapsed time but leaves
    the median untouched.
    """
    warmup = 50
    rng = np.random.default_rng(seed)
    controller = AdmissionController(capacity_kbps=CAPACITY_KBPS)
    total = count + warmup
    starts = rng.uniform(0, HORIZON, total)
    durations = rng.uniform(60, 7200, total)
    bandwidths = rng.integers(100, 4000, total)
    state = {"index": 0}

    def run():
        index = state["index"]
        state["index"] = index + 1
        controller.admit_issue(
            1,
            True,
            int(bandwidths[index]),
            float(starts[index]),
            float(starts[index] + durations[index]),
        )

    return measure_op(run, samples=count, warmup=warmup)


def controller_admit_ab(count: int, seed: int = 13) -> dict:
    """Armed-vs-disarmed admit overhead, paired in one process.

    Drives ONE controller under the live registry and flips its
    ``_telemetry`` flag per arm, so both arms share every byte of state —
    calendars, caches, memory layout — and differ only in the guarded
    branch.  (Separate per-arm controllers re-introduce allocator and
    layout luck worth a few percent; separate bench *runs* are even worse
    on machines whose clock throttles in multi-second windows.)  The flag
    write itself costs both arms the same, so it cancels out of the
    comparison.
    """
    if not get_registry().enabled:
        raise SystemExit("--ab-overhead needs REPRO_TELEMETRY=1 (live registry)")
    rng = np.random.default_rng(seed)
    total = 2 * count + 200  # both arms advance the same controller
    starts = rng.uniform(0, HORIZON, total)
    durations = rng.uniform(60, 7200, total)
    bandwidths = rng.integers(100, 4000, total)
    controller = AdmissionController(capacity_kbps=CAPACITY_KBPS, telemetry=True)
    state = {"index": 0}

    def arm(enabled: bool):
        def run():
            controller._telemetry = enabled
            index = state["index"]
            state["index"] = index + 1
            controller.admit_issue(
                1,
                True,
                int(bandwidths[index]),
                float(starts[index]),
                float(starts[index] + durations[index]),
            )

        return run

    return measure_ab(arm(True), arm(False), samples=count)


def _json_rows(
    metrics, load_count: int, tracked_count: int, churn_ops: int = 3 * (800 + 400)
) -> list[dict]:
    phase_ops = {"load": load_count, "tracked_load": tracked_count, "churn": churn_ops}
    return [
        bench_result(
            f"admission_{variant}_{phase}",
            {"load_count": load_count, "tracked_count": tracked_count},
            ops_per_sec=ops / seconds,
        )
        for variant, phases in sorted(metrics.items())
        for phase, seconds in sorted(phases.items())
        for ops in [phase_ops[phase]]
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down sharded-vs-monolithic comparison (CI-sized, no "
        "speedup floor): 2x10^5 bulk load, 5x10^4 tracked churn",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write machine-readable results to PATH"
    )
    parser.add_argument(
        "--ab-overhead",
        action="store_true",
        help="only measure armed-vs-disarmed telemetry overhead on the "
        "controller admit hot path (paired interleaved A/B; needs "
        "REPRO_TELEMETRY=1)",
    )
    args = parser.parse_args()
    if args.ab_overhead:
        admits = CONTROLLER_ADMITS_SMOKE if args.smoke else CONTROLLER_ADMITS
        stats = controller_admit_ab(admits)
        print(
            f"controller admit telemetry overhead: {stats['overhead']:+.1%} "
            f"(p50 on {stats['p50_on'] * 1e6:,.1f} us / "
            f"off {stats['p50_off'] * 1e6:,.1f} us, {admits:,} paired admits)"
        )
        write_bench_json(
            args.json,
            [
                {
                    "name": "admission_controller_admit_ab",
                    "params": {"count": admits},
                    **stats,
                }
            ],
        )
        return
    if args.smoke:
        rows, metrics = sharded_comparison(
            load_count=200_000,
            tracked_count=50_000,
            churn_admits=200,
            churn_releases=100,
        )
        print(_sharded_report(rows, "(smoke)"))
        json_rows = _json_rows(metrics, 200_000, 50_000, churn_ops=3 * (200 + 100))
        admits = CONTROLLER_ADMITS_SMOKE
    else:
        rows, metrics = sharded_comparison(
            load_count=10_000_000, tracked_count=1_000_000
        )
        print(_sharded_report(rows, "(10^7 bulk load, 10^6 tracked churn)"))
        json_rows = _json_rows(metrics, 10_000_000, 1_000_000)
        admits = CONTROLLER_ADMITS
    telemetry_mode = "on" if get_registry().enabled else "off"
    admit_stats = controller_admit_stats(admits)
    print(
        f"\ncontroller admit hot path: {admit_stats['ops_per_sec']:,.0f} admits/s, "
        f"p50 {admit_stats['p50'] * 1e6:,.1f} us "
        f"(telemetry {telemetry_mode}, {admits:,} sequential admits)"
    )
    json_rows.append(
        bench_result(
            "admission_controller_admit",
            {"count": admits, "telemetry": telemetry_mode},
            ops_per_sec=admit_stats["ops_per_sec"],
            p50=admit_stats["p50"],
            p99=admit_stats["p99"],
        )
    )
    write_bench_json(args.json, json_rows)
    if not args.smoke:
        speedup = metrics["monolithic"]["churn"] / metrics["sharded"]["churn"]
        if speedup < MIN_CHURN_SPEEDUP:
            raise SystemExit(f"churn speedup {speedup:.1f}x below {MIN_CHURN_SPEEDUP}x")


if __name__ == "__main__":
    main()
