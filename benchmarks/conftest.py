"""Benchmark harness helpers: deployments, report files, shared fixtures."""

from __future__ import annotations

import json
import pathlib
import time

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"


def report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def measure_op(fn, samples: int = 500, warmup: int = 10) -> dict:
    """Per-call latency samples -> ``{ops_per_sec, p50, p99}`` (seconds).

    Times each call individually so the percentiles are real per-op
    latencies, not a mean split N ways.
    """
    for _ in range(warmup):
        fn()
    latencies = []
    began = time.perf_counter()
    for _ in range(samples):
        t0 = time.perf_counter()
        fn()
        latencies.append(time.perf_counter() - t0)
    total = time.perf_counter() - began
    latencies.sort()
    return {
        "ops_per_sec": samples / total,
        "p50": latencies[(samples - 1) // 2],
        "p99": latencies[min(samples - 1, round(0.99 * (samples - 1)))],
    }


def measure_ab(run_on, run_off, samples: int = 4000, warmup: int = 50) -> dict:
    """Paired A/B per-op comparison: ``{p50_on, p50_off, overhead}``.

    Times the arms as back-to-back pairs, alternating which goes first,
    and estimates ``overhead`` as the median per-pair latency difference
    over the off arm's median latency.  Pairing matters twice over here:
    machines that throttle in multi-second windows make two *separate*
    benchmark runs incomparable (whichever run draws the slow window
    loses, regardless of the code), and even chunk-interleaved arms keep
    percent-level drift between one chunk and the next.  Differencing
    adjacent ops cancels both, and the median shrugs off GC and
    scheduler spikes.
    """
    for _ in range(warmup):
        run_on()
        run_off()
    on_first = True
    diffs: list[float] = []
    ons: list[float] = []
    offs: list[float] = []
    for _ in range(samples):
        first, second = (run_on, run_off) if on_first else (run_off, run_on)
        t0 = time.perf_counter()
        first()
        t1 = time.perf_counter()
        second()
        t2 = time.perf_counter()
        on, off = (t1 - t0, t2 - t1) if on_first else (t2 - t1, t1 - t0)
        on_first = not on_first
        diffs.append(on - off)
        ons.append(on)
        offs.append(off)
    diffs.sort()
    ons.sort()
    offs.sort()
    mid = (samples - 1) // 2
    return {
        "p50_on": ons[mid],
        "p50_off": offs[mid],
        "overhead": diffs[mid] / offs[mid],
    }


def bench_result(
    name: str,
    params: dict,
    ops_per_sec: float | None = None,
    p50: float | None = None,
    p99: float | None = None,
) -> dict:
    """One machine-readable benchmark row (the ``--json`` schema)."""
    return {
        "name": name,
        "params": dict(params),
        "ops_per_sec": ops_per_sec,
        "p50": p50,
        "p99": p99,
    }


def write_bench_json(path, results: list[dict]) -> pathlib.Path | None:
    """Persist ``--json`` rows; a no-op when no path was requested."""
    if not path:
        return None
    target = pathlib.Path(path)
    if target.parent != pathlib.Path("."):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"bench json: {target}")
    return target


def deploy_chain(num_ases: int, asset_duration: int = 14_400, seed: int = 7):
    """Fresh market deployment over a linear chain + its leaf-to-core path."""
    from repro.clock import SimClock
    from repro.controlplane import deploy_market
    from repro.scion import PathLookup, linear_topology, run_beaconing

    clock = SimClock(1_700_000_000.0)
    topology = linear_topology(max(num_ases, 2))
    deployment = deploy_market(
        topology, clock=clock, seed=seed, asset_duration=asset_duration
    )
    store = run_beaconing(topology, timestamp=1_700_000_000)
    path = PathLookup(store).find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    return deployment, path


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
