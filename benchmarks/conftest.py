"""Benchmark harness helpers: deployments, report files, shared fixtures."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent.parent / "results"


def report(name: str, text: str) -> None:
    """Print a benchmark report and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def deploy_chain(num_ases: int, asset_duration: int = 14_400, seed: int = 7):
    """Fresh market deployment over a linear chain + its leaf-to-core path."""
    from repro.clock import SimClock
    from repro.controlplane import deploy_market
    from repro.scion import PathLookup, linear_topology, run_beaconing

    clock = SimClock(1_700_000_000.0)
    topology = linear_topology(max(num_ases, 2))
    deployment = deploy_market(
        topology, clock=clock, seed=seed, asset_duration=asset_duration
    )
    store = run_beaconing(topology, timestamp=1_700_000_000)
    path = PathLookup(store).find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    return deployment, path


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR
