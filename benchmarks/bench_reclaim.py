"""Reclamation-scan throughput: the control loop at 10^5 tracked commitments.

Two passes over the same tracked population, against a monolithic active
calendar:

* **watch** — every reservation shows up, so a scan is pure judgment:
  sample the usage feed, compute observed rates, accumulate show-up
  aggregates, decide "not a no-show" for each.  This is the steady-state
  cost an AS pays per scan tick.
* **reclaim** — nobody shows up, so every tracked reservation is judged
  a no-show and its calendar commitment shrunk in place (the worst-case
  actuation burst).

Floor (CI): at 10^5 tracked commitments the watch pass must process
>= 100k reservations/s and the reclaim pass >= 20k reclamations/s.

Usage: PYTHONPATH=src python benchmarks/bench_reclaim.py
   or: PYTHONPATH=src python benchmarks/bench_reclaim.py --smoke
"""

import argparse
import time

try:
    from benchmarks.conftest import bench_result, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, report, write_bench_json

from repro.admission import ACTIVE, AdmissionController
from repro.analysis import render_comparison
from repro.reclaim import ReclamationEngine, UsageReporter

CAPACITY_KBPS = 10**10
INGRESS = 1
BOOKED_KBPS = 1_000
WINDOW = (0.0, 1_000.0)
SCAN_AT = 100.0  # well past the grace period, inside every window

FULL_TRACKED = 100_000
SMOKE_TRACKED = 5_000
FLOOR_WATCH_PER_SEC = 100_000.0
FLOOR_RECLAIM_PER_SEC = 20_000.0


def _tracked_population(count: int, show_up: bool):
    """One controller + engine with ``count`` tracked reservations."""
    controller = AdmissionController(CAPACITY_KBPS)
    calendar = controller.calendar(INGRESS, True, ACTIVE)
    # Full booked rate for SCAN_AT seconds, or silence: cumulative bytes.
    per_res = int(BOOKED_KBPS * 125 * SCAN_AT) if show_up else 0
    usage = {INGRESS: {res_id: per_res for res_id in range(count)}}
    engine = ReclamationEngine(
        controller,
        UsageReporter(lambda: usage, interval=0.25),
        grace_seconds=0.5,
    )
    for res_id in range(count):
        piece = calendar.commit(BOOKED_KBPS, *WINDOW, tag=f"b{res_id}")
        engine.track(
            res_id,
            INGRESS,
            BOOKED_KBPS,
            *WINDOW,
            [(INGRESS, True, piece.commitment_id)],
        )
    return engine


def reclaim_scan_comparison(count: int):
    """Time one watch scan and one reclaim-everything scan at ``count``."""
    metrics: dict[str, dict] = {}

    watcher = _tracked_population(count, show_up=True)
    began = time.perf_counter()
    events = watcher.scan(SCAN_AT)
    elapsed = time.perf_counter() - began
    assert events == [] and watcher.tracked_count == count
    metrics["watch"] = {"tracked_per_sec": count / elapsed, "reclaims": 0}

    reclaimer = _tracked_population(count, show_up=False)
    began = time.perf_counter()
    events = reclaimer.scan(SCAN_AT)
    elapsed = time.perf_counter() - began
    assert len(events) == count  # every booking was a no-show
    metrics["reclaim"] = {"tracked_per_sec": count / elapsed, "reclaims": count}

    rows = [
        [label, f"{stats['tracked_per_sec']:,.0f}", f"{stats['reclaims']:,}"]
        for label, stats in metrics.items()
    ]
    return rows, metrics


def _render(rows, scale_note: str) -> str:
    return render_comparison(
        ["pass", "tracked/s", "reclaims"],
        rows,
        title=f"Reclamation-scan throughput {scale_note} — judgment-only "
        "pass vs reclaim-everything pass",
        note=f"floor: watch >= {FLOOR_WATCH_PER_SEC:,.0f}/s and reclaim >= "
        f"{FLOOR_RECLAIM_PER_SEC:,.0f}/s at {FULL_TRACKED:,} tracked.",
    )


def floor_applies() -> bool:
    return True  # single-process: no machine-shape caveats


def enforce_floor(metrics: dict) -> None:
    watch = metrics["watch"]["tracked_per_sec"]
    reclaim = metrics["reclaim"]["tracked_per_sec"]
    assert watch >= FLOOR_WATCH_PER_SEC, (
        f"watch scan {watch:,.0f}/s is below the "
        f"{FLOOR_WATCH_PER_SEC:,.0f}/s floor"
    )
    assert reclaim >= FLOOR_RECLAIM_PER_SEC, (
        f"reclaim scan {reclaim:,.0f}/s is below the "
        f"{FLOOR_RECLAIM_PER_SEC:,.0f}/s floor"
    )


def _json_rows(metrics: dict, count: int) -> list[dict]:
    return [
        bench_result(
            f"reclaim_scan_{label}",
            {"tracked": count, "booked_kbps": BOOKED_KBPS},
            ops_per_sec=stats["tracked_per_sec"],
        )
        | {"reclaims": stats["reclaims"]}
        for label, stats in metrics.items()
    ]


def test_reclaim_scan_smoke_report(benchmark):
    """CI-sized population; the throughput floors always apply."""

    def run():
        rows, metrics = reclaim_scan_comparison(SMOKE_TRACKED)
        report("bench_reclaim_smoke", _render(rows, "(smoke)"))
        enforce_floor(metrics)

    benchmark.pedantic(run, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run: {SMOKE_TRACKED:,} tracked commitments "
        f"instead of {FULL_TRACKED:,}",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write machine-readable results to PATH"
    )
    parser.add_argument(
        "--no-floor",
        action="store_true",
        help="skip the throughput floor assertions",
    )
    args = parser.parse_args()
    count = SMOKE_TRACKED if args.smoke else FULL_TRACKED
    scale_note = "(smoke)" if args.smoke else "(10^5 tracked commitments)"
    rows, metrics = reclaim_scan_comparison(count)
    report("bench_reclaim", _render(rows, scale_note))
    if not args.no_floor:
        enforce_floor(metrics)
    write_bench_json(args.json, _json_rows(metrics, count))


if __name__ == "__main__":
    main()
