"""Table 3: fine-grained border-router processing timings.

Prints the paper's per-step DPDK timings next to our measured pure-Python
costs for the same operations, plus full-pipeline packet processing times
for SCION vs Hummingbird.  The Python/DPDK ratio is the calibration factor
used to justify feeding the paper's timings into the Fig. 5 model.
"""

import pytest

from benchmarks.conftest import report

from repro.analysis import render_comparison
from repro.perfmodel import papertimings as paper
from repro.perfmodel.measure import build_fixture, measure_router


def _table3_report_impl():
    measured = measure_router(packets=800)
    rows = []
    for name, paper_ns in paper.ROUTER_STEPS_SCION + paper.ROUTER_STEPS_HUMMINGBIRD_EXTRA:
        ours = measured.steps.get(name)
        rows.append(
            [
                name,
                paper_ns,
                f"{ours:.0f}" if ours is not None else "(in pipeline total)",
            ]
        )
    rows.append(["TOTAL SCION pipeline", paper.SCION_FORWARD_NS, f"{measured.scion_process_ns:.0f}"])
    rows.append(
        [
            "TOTAL Hummingbird pipeline",
            paper.HUMMINGBIRD_FORWARD_NS,
            f"{measured.hummingbird_process_ns:.0f}",
        ]
    )
    ratio = measured.hummingbird_process_ns / paper.HUMMINGBIRD_FORWARD_NS
    text = render_comparison(
        ["task", "paper ns (DPDK+AES-NI)", "measured ns (pure Python)"],
        rows,
        title="Table 3 — border-router packet validation timings",
        note=(
            f"Python/DPDK calibration factor: {ratio:.0f}x. Structure matches: "
            f"Hummingbird adds {measured.hummingbird_overhead_ns:.0f} ns "
            f"({measured.hummingbird_overhead_ns / measured.scion_process_ns:.1f}x "
            f"SCION) vs the paper's 185 ns (1.5x)."
        ),
    )
    report("table3_router_steps", text)
    assert measured.hummingbird_process_ns > measured.scion_process_ns


def test_bench_hummingbird_router_process(benchmark):
    fixture = build_fixture(payload=500)
    packets = iter([fixture.hb_source.build_packet(bytes(500)) for _ in range(60_000)])

    def once():
        fixture.hb_router.process(next(packets), 0)

    benchmark.pedantic(once, rounds=2000, iterations=1, warmup_rounds=100)


def test_bench_scion_router_process(benchmark):
    fixture = build_fixture(payload=500)
    packets = iter([fixture.scion_source.build_packet(bytes(500)) for _ in range(60_000)])

    def once():
        fixture.scion_router.process(next(packets), 0)

    benchmark.pedantic(once, rounds=2000, iterations=1, warmup_rounds=100)


def test_table3_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_table3_report_impl, rounds=1, iterations=1)
