"""Table 3: fine-grained border-router processing timings.

Prints the paper's per-step DPDK timings next to our measured pure-Python
costs for the same operations, plus full-pipeline packet processing times
for SCION vs Hummingbird.  The Python/DPDK ratio is the calibration factor
used to justify feeding the paper's timings into the Fig. 5 model.
"""

import argparse

import pytest

try:
    from benchmarks.conftest import bench_result, measure_op, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_op, report, write_bench_json

from repro.analysis import render_comparison
from repro.perfmodel import papertimings as paper
from repro.perfmodel.measure import build_fixture, measure_router


def _table3_report_impl():
    measured = measure_router(packets=800)
    rows = []
    for name, paper_ns in paper.ROUTER_STEPS_SCION + paper.ROUTER_STEPS_HUMMINGBIRD_EXTRA:
        ours = measured.steps.get(name)
        rows.append(
            [
                name,
                paper_ns,
                f"{ours:.0f}" if ours is not None else "(in pipeline total)",
            ]
        )
    rows.append(["TOTAL SCION pipeline", paper.SCION_FORWARD_NS, f"{measured.scion_process_ns:.0f}"])
    rows.append(
        [
            "TOTAL Hummingbird pipeline",
            paper.HUMMINGBIRD_FORWARD_NS,
            f"{measured.hummingbird_process_ns:.0f}",
        ]
    )
    ratio = measured.hummingbird_process_ns / paper.HUMMINGBIRD_FORWARD_NS
    text = render_comparison(
        ["task", "paper ns (DPDK+AES-NI)", "measured ns (pure Python)"],
        rows,
        title="Table 3 — border-router packet validation timings",
        note=(
            f"Python/DPDK calibration factor: {ratio:.0f}x. Structure matches: "
            f"Hummingbird adds {measured.hummingbird_overhead_ns:.0f} ns "
            f"({measured.hummingbird_overhead_ns / measured.scion_process_ns:.1f}x "
            f"SCION) vs the paper's 185 ns (1.5x)."
        ),
    )
    report("table3_router_steps", text)
    assert measured.hummingbird_process_ns > measured.scion_process_ns


def test_bench_hummingbird_router_process(benchmark):
    fixture = build_fixture(payload=500)
    packets = iter([fixture.hb_source.build_packet(bytes(500)) for _ in range(60_000)])

    def once():
        fixture.hb_router.process(next(packets), 0)

    benchmark.pedantic(once, rounds=2000, iterations=1, warmup_rounds=100)


def test_bench_scion_router_process(benchmark):
    fixture = build_fixture(payload=500)
    packets = iter([fixture.scion_source.build_packet(bytes(500)) for _ in range(60_000)])

    def once():
        fixture.scion_router.process(next(packets), 0)

    benchmark.pedantic(once, rounds=2000, iterations=1, warmup_rounds=100)


def test_table3_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_table3_report_impl, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--payload", type=int, default=500, help="payload bytes")
    parser.add_argument("--samples", type=int, default=300, help="packets to time")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    fixture = build_fixture(payload=args.payload)
    results = []
    for name, source, router in (
        ("table3_hummingbird_router_process", fixture.hb_source, fixture.hb_router),
        ("table3_scion_router_process", fixture.scion_source, fixture.scion_router),
    ):
        payload = bytes(args.payload)
        packets = iter(
            [source.build_packet(payload) for _ in range(args.samples + 20)]
        )
        stats = measure_op(
            lambda: router.process(next(packets), 0), samples=args.samples, warmup=10
        )
        results.append(bench_result(name, {"payload": args.payload}, **stats))
        print(f"{name}: p50 {stats['p50'] * 1e9:.0f} ns/pkt")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
