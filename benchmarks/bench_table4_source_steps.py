"""Table 4: fine-grained source packet-generation timings (4-hop path)."""

import pytest

from benchmarks.conftest import report

from repro.analysis import render_comparison
from repro.perfmodel import papertimings as paper
from repro.perfmodel.measure import build_fixture, measure_source

PAPER_STAGES = {
    "Add header fields": paper.SOURCE_HEADERS_NS,
    "Compute flyover MACs": paper.SOURCE_FLYOVER_MACS_4HOPS_NS,
    "Add hop fields": paper.SOURCE_HOPFIELDS_4HOPS_NS,
    "Add payload": paper.SOURCE_PAYLOAD_500_NS,
}


def _table4_report_impl():
    m500 = measure_source(hops=4, payload=500, iterations=400)
    m1500 = measure_source(hops=4, payload=1500, iterations=400)
    rows = []
    for stage, paper_ns in PAPER_STAGES.items():
        rows.append([stage, paper_ns, f"{m500.stages[stage]:.0f}"])
    rows.append(
        [
            "TOTAL Hummingbird, 500 B",
            f"{paper.hummingbird_generation_ns(4, 500):.0f}",
            f"{m500.hummingbird_generation_ns:.0f}",
        ]
    )
    rows.append(
        [
            "TOTAL Hummingbird, 1500 B",
            f"{paper.hummingbird_generation_ns(4, 1500):.0f}",
            f"{m1500.hummingbird_generation_ns:.0f}",
        ]
    )
    rows.append(
        [
            "TOTAL SCION, 500 B",
            f"{paper.scion_generation_ns(4, 500):.0f}",
            f"{m500.scion_generation_ns:.0f}",
        ]
    )
    text = render_comparison(
        ["task", "paper ns", "measured ns (Python)"],
        rows,
        title="Table 4 — source packet-generation timings (4 AS-level hops)",
        note="Same pipeline structure: flyover MACs scale per hop, payload "
        "cost per byte; Hummingbird generation costs more than SCION "
        "because the source computes one MAC per reserved hop.",
    )
    report("table4_source_steps", text)
    assert m500.hummingbird_generation_ns > m500.scion_generation_ns
    assert m1500.hummingbird_generation_ns >= m500.hummingbird_generation_ns


def test_bench_hummingbird_generation(benchmark):
    fixture = build_fixture(hops=4, payload=500)
    payload = bytes(500)
    benchmark(lambda: fixture.hb_source.build_packet(payload))


def test_bench_scion_generation(benchmark):
    fixture = build_fixture(hops=4, payload=500)
    payload = bytes(500)
    benchmark(lambda: fixture.scion_source.build_packet(payload))


def test_table4_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_table4_report_impl, rounds=1, iterations=1)
