"""Table 4: fine-grained source packet-generation timings (4-hop path)."""

import argparse

import pytest

try:
    from benchmarks.conftest import bench_result, measure_op, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_op, report, write_bench_json

from repro.analysis import render_comparison
from repro.perfmodel import papertimings as paper
from repro.perfmodel.measure import build_fixture, measure_source

PAPER_STAGES = {
    "Add header fields": paper.SOURCE_HEADERS_NS,
    "Compute flyover MACs": paper.SOURCE_FLYOVER_MACS_4HOPS_NS,
    "Add hop fields": paper.SOURCE_HOPFIELDS_4HOPS_NS,
    "Add payload": paper.SOURCE_PAYLOAD_500_NS,
}


def _table4_report_impl():
    m500 = measure_source(hops=4, payload=500, iterations=400)
    m1500 = measure_source(hops=4, payload=1500, iterations=400)
    rows = []
    for stage, paper_ns in PAPER_STAGES.items():
        rows.append([stage, paper_ns, f"{m500.stages[stage]:.0f}"])
    rows.append(
        [
            "TOTAL Hummingbird, 500 B",
            f"{paper.hummingbird_generation_ns(4, 500):.0f}",
            f"{m500.hummingbird_generation_ns:.0f}",
        ]
    )
    rows.append(
        [
            "TOTAL Hummingbird, 1500 B",
            f"{paper.hummingbird_generation_ns(4, 1500):.0f}",
            f"{m1500.hummingbird_generation_ns:.0f}",
        ]
    )
    rows.append(
        [
            "TOTAL SCION, 500 B",
            f"{paper.scion_generation_ns(4, 500):.0f}",
            f"{m500.scion_generation_ns:.0f}",
        ]
    )
    text = render_comparison(
        ["task", "paper ns", "measured ns (Python)"],
        rows,
        title="Table 4 — source packet-generation timings (4 AS-level hops)",
        note="Same pipeline structure: flyover MACs scale per hop, payload "
        "cost per byte; Hummingbird generation costs more than SCION "
        "because the source computes one MAC per reserved hop.",
    )
    report("table4_source_steps", text)
    assert m500.hummingbird_generation_ns > m500.scion_generation_ns
    assert m1500.hummingbird_generation_ns >= m500.hummingbird_generation_ns


def test_bench_hummingbird_generation(benchmark):
    fixture = build_fixture(hops=4, payload=500)
    payload = bytes(500)
    benchmark(lambda: fixture.hb_source.build_packet(payload))


def test_bench_scion_generation(benchmark):
    fixture = build_fixture(hops=4, payload=500)
    payload = bytes(500)
    benchmark(lambda: fixture.scion_source.build_packet(payload))


def test_table4_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_table4_report_impl, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--payload", type=int, default=500, help="payload bytes")
    parser.add_argument("--samples", type=int, default=300, help="packets to time")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    fixture = build_fixture(hops=4, payload=args.payload)
    payload = bytes(args.payload)
    results = []
    for name, source in (
        ("table4_hummingbird_generation", fixture.hb_source),
        ("table4_scion_generation", fixture.scion_source),
    ):
        stats = measure_op(lambda: source.build_packet(payload), samples=args.samples)
        results.append(
            bench_result(name, {"hops": 4, "payload": args.payload}, **stats)
        )
        print(f"{name}: p50 {stats['p50'] * 1e9:.0f} ns/pkt")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
