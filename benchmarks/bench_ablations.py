"""Ablation benches for the design choices DESIGN.md calls out.

* ResID assignment: First-Fit competitiveness on random workloads and the
  §4.4 policing-array sizing examples.
* QoS under attack: the netsim congestion experiment (property D2).
* PRF backend: AES-CMAC vs keyed BLAKE2 per-operation cost.
"""

import argparse
import random

import pytest

try:
    from benchmarks.conftest import bench_result, measure_op, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_op, report, write_bench_json

from repro.analysis import render_comparison
from repro.crypto.prf import PrfFactory
from repro.hummingbird.resid import FirstFitColoring, Interval, policing_array_bytes
from repro.netsim.scenarios import congestion_experiment, linear_path
from repro.perfmodel.measure import time_op


def _ablation_resid_report_impl():
    rng = random.Random(5)
    rows = []
    for workload, generator in (
        ("uniform arrivals", lambda: (rng.uniform(0, 1000), rng.uniform(1, 60))),
        ("bursty arrivals", lambda: (rng.choice([0, 100, 200]) + rng.uniform(0, 5), rng.uniform(1, 120))),
        ("long + short mix", lambda: (rng.uniform(0, 1000), rng.choice([5, 600]))),
    ):
        coloring = FirstFitColoring()
        intervals = []
        for _ in range(2000):
            start, length = generator()
            interval = Interval(start, start + length)
            intervals.append(interval)
            coloring.assign(interval)
        events = sorted(
            [(i.start, 1) for i in intervals] + [(i.end, -1) for i in intervals]
        )
        depth = max_depth = 0
        for _, delta in events:
            depth += delta
            max_depth = max(max_depth, depth)
        competitiveness = coloring.colors_in_use / max_depth
        rows.append(
            [workload, max_depth, coloring.colors_in_use, f"{competitiveness:.2f}"]
        )
        # §4.4 uses R=3 for sizing; practical workloads should stay below it.
        assert competitiveness < 3.0
    sizing = [
        ["policing array 100 Gbps / 100 kbps", "", "", f"{policing_array_bytes(100_000_000, 100) / 1e6:.0f} MB"],
        ["policing array 100 Gbps / 4 Mbps", "", "", f"{policing_array_bytes(100_000_000, 4_000) / 1e3:.0f} kB"],
    ]
    text = render_comparison(
        ["workload", "optimal colours", "First-Fit colours", "ratio / size"],
        rows + sizing,
        title="Ablation — online First-Fit ResID assignment (§4.4)",
        note="First-Fit stays well under the R=3 sizing bound on practical "
        "workloads; array sizes reproduce the paper's 24 MB / 600 kB examples.",
    )
    report("ablation_resid", text)


def _ablation_qos_report_impl():
    topology, path = linear_path(4)
    unprotected = congestion_experiment(topology, path, protected=False, duration=2.0)
    protected = congestion_experiment(topology, path, protected=True, duration=2.0)
    rows = [
        [
            "best effort",
            f"{unprotected.victim['goodput_mbps']:.2f}",
            f"{100 * unprotected.victim['loss_rate']:.1f}%",
            unprotected.victim["p50_ms"],
        ],
        [
            "flyover reservation",
            f"{protected.victim['goodput_mbps']:.2f}",
            f"{100 * protected.victim['loss_rate']:.1f}%",
            protected.victim["p50_ms"],
        ],
    ]
    text = render_comparison(
        ["victim flow", "goodput Mbps", "loss", "p50 ms"],
        rows,
        title="Ablation — QoS under a 2x-line-rate best-effort flood (D2)",
        note="2 Mbps victim on a 10 Mbps bottleneck; reservation traffic is "
        "authenticated, policed, and queued with strict priority.",
    )
    report("ablation_qos", text)
    # Protected flow keeps essentially its full 2 Mbps; unprotected gets at
    # most its fair share of the flooded bottleneck (~29 % here).
    assert protected.victim["goodput_mbps"] > 1.9
    assert protected.victim["goodput_mbps"] > 3 * unprotected.victim["goodput_mbps"]


def _ablation_prf_report_impl():
    block = bytes(16)
    rows = []
    timings = {}
    for backend in ("aes", "blake2"):
        prf = PrfFactory(backend)(bytes(16))
        ns = time_op(lambda: prf.compute(block), iterations=3000)
        timings[backend] = ns
        rows.append([backend, f"{ns:.0f}"])
    text = render_comparison(
        ["PRF backend", "ns per 16-byte block (Python)"],
        rows,
        title="Ablation — PRF backend cost (one MAC block)",
        note="The AES backend matches the paper's construction; BLAKE2 "
        "accelerates large-scale simulations. Both sit behind the same "
        "interface and are interchangeable per deployment.",
    )
    report("ablation_prf", text)
    assert timings["blake2"] < timings["aes"]


def test_bench_policing_operation(benchmark):
    from repro.hummingbird.policing import TokenBucketArray

    bucket = TokenBucketArray(capacity=100_000)
    counter = [0]

    def once():
        counter[0] += 1
        bucket.monitor(counter[0] % 100_000, 4000, 600, 1_700_000_000.0)

    benchmark(once)


def test_ablation_resid_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_ablation_resid_report_impl, rounds=1, iterations=1)


def test_ablation_qos_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_ablation_qos_report_impl, rounds=1, iterations=1)


def test_ablation_prf_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_ablation_prf_report_impl, rounds=1, iterations=1)


def main() -> None:
    from repro.hummingbird.policing import TokenBucketArray

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=2000, help="ops to time")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    results = []

    bucket = TokenBucketArray(capacity=100_000)
    counter = [0]

    def police():
        counter[0] += 1
        bucket.monitor(counter[0] % 100_000, 4000, 600, 1_700_000_000.0)

    stats = measure_op(police, samples=args.samples)
    results.append(
        bench_result("ablation_policing_monitor", {"capacity": 100_000}, **stats)
    )
    print(f"policing monitor: {stats['ops_per_sec']:,.0f} ops/s")

    block = bytes(16)
    for backend in ("aes", "blake2"):
        prf = PrfFactory(backend)(bytes(16))
        stats = measure_op(lambda: prf.compute(block), samples=args.samples)
        results.append(bench_result("ablation_prf_block", {"backend": backend}, **stats))
        print(f"prf {backend}: {stats['ops_per_sec']:,.0f} ops/s")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
