"""Figure 5: border-router throughput vs CPU cores, per payload size.

Paper-calibrated curves (Table 3 per-packet costs through the multicore
line-rate model) regenerate the published figure: 160 Gbps with 4 cores at
1500 B payloads, ~32 cores for 100 B, SCION above Hummingbird until both
saturate.  The measured-Python series applies the same model to our
microbenchmarked per-packet costs.
"""

import argparse

import pytest

try:
    from benchmarks.conftest import bench_result, measure_op, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_op, report, write_bench_json

from repro.analysis import line_plot, render_comparison
from repro.perfmodel import papertimings as paper
from repro.perfmodel.measure import measure_router
from repro.perfmodel.scaling import (
    FIG5_CORES,
    FIG5_PAYLOADS,
    ThroughputModel,
    fig5_forwarding_series,
    wire_bytes,
)


def _fig5_report_impl():
    series = fig5_forwarding_series()
    rows = []
    for payload in FIG5_PAYLOADS:
        hb = dict(series[("hummingbird", payload)])
        scion = dict(series[("scion", payload)])
        for cores in FIG5_CORES:
            rows.append(
                [payload, cores, f"{hb[cores]:.1f}", f"{scion[cores]:.1f}"]
            )
    table = render_comparison(
        ["payload B", "cores", "Hummingbird Gbps", "SCION Gbps"],
        rows,
        title="Figure 5 — forwarding throughput (paper-calibrated model)",
        note="line rate 160 Gbps; solid=Hummingbird (308 ns/pkt), "
        "dashed=SCION (123 ns/pkt).",
    )
    plot = line_plot(
        {
            f"hummingbird {p}B": series[("hummingbird", p)]
            for p in (100, 500, 1500)
        }
        | {f"scion {p}B": series[("scion", p)] for p in (100, 1500)},
        title="Fig 5: throughput [Gbps] vs cores",
        x_label="cores",
        y_label="Gbps",
    )
    report("fig5_forwarding", table + "\n\n" + plot)

    # Headline shape assertions from §7.2.
    hb_model = ThroughputModel(paper.HUMMINGBIRD_FORWARD_NS)
    assert hb_model.throughput_gbps(4, wire_bytes(4, 1500, True)) == pytest.approx(160.0)
    assert 24 <= hb_model.cores_for_line_rate(wire_bytes(4, 100, True)) <= 40


def _fig5_measured_substrate_report_impl():
    measured = measure_router(packets=600)
    series = fig5_forwarding_series(
        scion_ns=measured.scion_process_ns,
        hummingbird_ns=measured.hummingbird_process_ns,
    )
    rows = []
    for payload in (500, 1500):
        hb = dict(series[("hummingbird", payload)])
        scion = dict(series[("scion", payload)])
        for cores in (1, 8, 32):
            rows.append([payload, cores, f"{hb[cores]:.3f}", f"{scion[cores]:.3f}"])
    text = render_comparison(
        ["payload B", "cores", "Hummingbird Gbps", "SCION Gbps"],
        rows,
        title="Figure 5 (measured substrate) — same model fed with our "
        "pure-Python per-packet costs",
        note=f"per-packet: SCION {measured.scion_process_ns:.0f} ns, "
        f"Hummingbird {measured.hummingbird_process_ns:.0f} ns; the shape "
        "(SCION > Hummingbird, larger payloads saturate earlier) is identical.",
    )
    report("fig5_forwarding_measured", text)


def test_bench_throughput_model(benchmark):
    model = ThroughputModel(paper.HUMMINGBIRD_FORWARD_NS)
    benchmark(lambda: model.throughput_gbps(16, wire_bytes(4, 500, True)))


def test_fig5_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_fig5_report_impl, rounds=1, iterations=1)


def test_fig5_measured_substrate_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_fig5_measured_substrate_report_impl, rounds=1, iterations=1)


def main() -> None:
    from repro.perfmodel.measure import build_fixture

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--payload", type=int, default=500, help="payload bytes")
    parser.add_argument("--samples", type=int, default=300, help="packets to time")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    fixture = build_fixture(payload=args.payload)
    results = []
    for name, source, router in (
        ("fig5_hummingbird_forward", fixture.hb_source, fixture.hb_router),
        ("fig5_scion_forward", fixture.scion_source, fixture.scion_router),
    ):
        payload = bytes(args.payload)
        packets = iter(
            [source.build_packet(payload) for _ in range(args.samples + 20)]
        )
        stats = measure_op(
            lambda: router.process(next(packets), 0), samples=args.samples, warmup=10
        )
        results.append(bench_result(name, {"payload": args.payload}, **stats))
        print(f"{name}: p50 {stats['p50'] * 1e9:.0f} ns/pkt")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
