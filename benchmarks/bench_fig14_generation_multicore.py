"""Figure 14: source traffic-generation throughput vs cores (500 B payload)."""

import argparse

import pytest

try:
    from benchmarks.conftest import bench_result, measure_op, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_op, report, write_bench_json

from repro.analysis import line_plot, render_comparison
from repro.perfmodel.measure import measure_source
from repro.perfmodel.scaling import FIG14_HOPS, FIG5_CORES, fig14_generation_series


def _fig14_report_impl():
    series = fig14_generation_series()
    rows = []
    for hops in FIG14_HOPS:
        hb = dict(series[("hummingbird", hops)])
        scion = dict(series[("scion", hops)])
        for cores in FIG5_CORES:
            rows.append([hops, cores, f"{hb[cores]:.1f}", f"{scion[cores]:.1f}"])
    table = render_comparison(
        ["hops", "cores", "Hummingbird Gbps", "SCION Gbps"],
        rows,
        title="Figure 14 — source generation throughput, 500 B payload "
        "(paper-calibrated model)",
        note="32 cores deliver the 160 Gbps line rate for h <= 8 "
        "(paper: 'a mere 32 cores deliver 160 Gbps line rate').",
    )
    plot = line_plot(
        {f"hummingbird h={h}": series[("hummingbird", h)] for h in (1, 4, 16)},
        title="Fig 14: generation throughput [Gbps] vs cores (500 B)",
        x_label="cores",
        y_label="Gbps",
    )
    report("fig14_generation_multicore", table + "\n\n" + plot)

    # Shape: line rate at 32 cores for small hop counts; fewer hops = faster.
    for hops in (1, 2, 4, 8):
        assert dict(series[("hummingbird", hops)])[32] == pytest.approx(160.0)
    one_core = {h: dict(series[("hummingbird", h)])[1] for h in FIG14_HOPS}
    assert one_core[1] > one_core[4] > one_core[16]


def _fig14_measured_substrate_report_impl():
    rows = []
    for hops in (2, 4, 8):  # a path needs >= 2 ASes (src != dst)
        measured = measure_source(hops=hops, payload=500, iterations=200)
        rows.append(
            [
                hops,
                f"{measured.hummingbird_generation_ns:.0f}",
                f"{measured.scion_generation_ns:.0f}",
            ]
        )
    text = render_comparison(
        ["hops", "Hummingbird ns/pkt", "SCION ns/pkt"],
        rows,
        title="Figure 14 (measured substrate) — our per-packet generation "
        "costs, 500 B payload",
        note="cost grows with hop count for Hummingbird (one MAC per "
        "reserved hop), matching the paper's per-hop scaling.",
    )
    report("fig14_generation_measured", text)


def test_bench_generation_16_hops(benchmark):
    from repro.perfmodel.measure import build_fixture

    fixture = build_fixture(hops=16, payload=500)
    payload = bytes(500)
    benchmark(lambda: fixture.hb_source.build_packet(payload))


def test_fig14_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_fig14_report_impl, rounds=1, iterations=1)


def test_fig14_measured_substrate_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_fig14_measured_substrate_report_impl, rounds=1, iterations=1)


def main() -> None:
    from repro.perfmodel.measure import build_fixture

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hops", type=int, nargs="*", default=[2, 4, 8],
                        help="AS-level hop counts to sample")
    parser.add_argument("--samples", type=int, default=300, help="packets to time")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    results = []
    payload = bytes(500)
    for hops in args.hops:
        fixture = build_fixture(hops=hops, payload=500)
        stats = measure_op(
            lambda: fixture.hb_source.build_packet(payload), samples=args.samples
        )
        results.append(
            bench_result(
                "fig14_hummingbird_generation", {"hops": hops, "payload": 500}, **stats
            )
        )
        print(f"h={hops}: p50 {stats['p50'] * 1e9:.0f} ns/pkt")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
