"""Indexed vs naive listing discovery at 10^4..10^6 listings.

The v1 ``find_listing`` scanned EVERY ledger object per hop per query; the
v2 :class:`~repro.marketdata.MarketIndexer` consumes the marketplace event
stream incrementally into per-interface sorted structures.  This bench
fabricates markets of growing size (listings spread over a realistic pool
of AS interfaces), fires identical rectangle-cover queries at both paths,
and reports

* **index build** — event-consumption throughput of a cold ``sync()``;
* **indexed queries/sec** vs **naive queries/sec** and the speedup
  (acceptance bar: >= 50x at 10^5 listings);
* **incremental apply** — Sold/Delisted events folded into a live index
  without a rescan.

Run:  PYTHONPATH=src python benchmarks/bench_indexer.py [--smoke | --full]
  or: PYTHONPATH=src python -m pytest benchmarks/bench_indexer.py -q
"""

from __future__ import annotations

import argparse
import random
import time

try:
    from benchmarks.conftest import bench_result, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, report, write_bench_json

from repro.analysis import render_comparison
from repro.contracts.asset import ASSET_TYPE
from repro.contracts.market import LISTING_TYPE
from repro.ledger.chain import Ledger
from repro.ledger.objects import LedgerObject, Ownership
from repro.ledger.transactions import Event
from repro.marketdata import ListingQuery, MarketIndexer, naive_best_listing
from repro.scion.addresses import IsdAs

MARKETPLACE = "bench-marketplace"
GRANULARITY = 60
HORIZON_SLOTS = 2400  # granules of calendar time the listings spread over
ANCHOR = 1_700_000_000
MIN_SPEEDUP_AT_100K = 50.0
MIN_SPEEDUP_SMOKE = 10.0

DEFAULT_SIZES = (10_000, 100_000)
FULL_SIZES = (10_000, 100_000, 1_000_000)
SMOKE_SIZES = (2_000,)


def _key_pool(rng: random.Random, count: int = 160):
    """A realistic interface pool: ~20 ASes x 4 interfaces x 2 directions."""
    pool = []
    for asn in range(1, count // 8 + 1):
        for interface in range(1, 5):
            for is_ingress in (True, False):
                pool.append((1, asn, interface, is_ingress))
    return pool[:count]


def populate(ledger: Ledger, num_listings: int, seed: int = 7) -> list[dict]:
    """Fabricate ``num_listings`` listed assets directly into the ledger.

    Objects and Listed events are written the same shape the market
    contract produces, so both the naive scan and the indexer see exactly
    what a real deployment would — building 10^6 listings through
    transactions would dominate the benchmark's runtime.
    """
    rng = random.Random(seed)
    keys = _key_pool(rng)
    snapshots = []
    for index in range(num_listings):
        isd, asn, interface, is_ingress = rng.choice(keys)
        start_slot = rng.randrange(HORIZON_SLOTS)
        duration_slots = rng.randint(1, 120)
        start = ANCHOR + start_slot * GRANULARITY
        expiry = start + duration_slots * GRANULARITY
        asset_id = f"asset-{index:08d}"
        listing_id = f"listing-{index:08d}"
        asset_payload = {
            "isd": isd,
            "asn": asn,
            "issuer": f"as-{asn}",
            "bandwidth_kbps": rng.randrange(1_000, 1_000_000, 100),
            "start": start,
            "expiry": expiry,
            "interface": interface,
            "is_ingress": is_ingress,
            "granularity": GRANULARITY,
            "min_bandwidth_kbps": 100,
        }
        listing_payload = {
            "marketplace": MARKETPLACE,
            "asset": asset_id,
            "seller": f"as-{asn}",
            "price_micromist_per_unit": rng.randint(10, 500),
        }
        ledger.objects[asset_id] = LedgerObject(
            asset_id, ASSET_TYPE, Ownership.OWNED, MARKETPLACE, asset_payload
        )
        ledger.objects[listing_id] = LedgerObject(
            listing_id, LISTING_TYPE, Ownership.OWNED, MARKETPLACE, listing_payload
        )
        snapshot = {
            "marketplace": MARKETPLACE,
            "listing": listing_id,
            "asset": asset_id,
            "seller": listing_payload["seller"],
            "price_micromist_per_unit": listing_payload["price_micromist_per_unit"],
            **{
                key: asset_payload[key]
                for key in (
                    "isd",
                    "asn",
                    "interface",
                    "is_ingress",
                    "bandwidth_kbps",
                    "start",
                    "expiry",
                    "granularity",
                    "min_bandwidth_kbps",
                )
            },
        }
        ledger.checkpoint += 1
        ledger.events.append(Event("Listed", snapshot, "bench", ledger.checkpoint))
        snapshots.append(snapshot)
    return snapshots


def _queries(snapshots: list[dict], count: int, seed: int = 11) -> list[ListingQuery]:
    """Coverable queries drawn from random listings' rectangles."""
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        snapshot = rng.choice(snapshots)
        slots = (snapshot["expiry"] - snapshot["start"]) // GRANULARITY
        offset = rng.randrange(slots)
        length = rng.randint(1, slots - offset)
        start = snapshot["start"] + offset * GRANULARITY
        queries.append(
            ListingQuery(
                isd_as=IsdAs(snapshot["isd"], snapshot["asn"]),
                interface=snapshot["interface"],
                is_ingress=snapshot["is_ingress"],
                start=start,
                expiry=start + length * GRANULARITY,
                bandwidth_kbps=rng.randrange(100, snapshot["bandwidth_kbps"] + 1, 100),
            )
        )
    return queries


def _mutation_events(snapshots: list[dict], count: int, seed: int = 13) -> list[Event]:
    """Sold (shrink) and Delisted events against random live listings."""
    rng = random.Random(seed)
    events = []
    for victim in rng.sample(snapshots, count):
        if rng.random() < 0.5:
            events.append(
                Event(
                    "Delisted",
                    {
                        "marketplace": MARKETPLACE,
                        "listing": victim["listing"],
                        "asset": victim["asset"],
                    },
                    "bench",
                    0,
                )
            )
        else:
            events.append(
                Event(
                    "Sold",
                    {
                        "marketplace": MARKETPLACE,
                        "listing": victim["listing"],
                        "asset": "bench-sold-piece",
                        "price_mist": 1,
                        "buyer": "bench-buyer",
                        "listing_closed": False,
                        "remaining": {
                            "bandwidth_kbps": max(100, victim["bandwidth_kbps"] // 2),
                            "start": victim["start"],
                            "expiry": victim["expiry"],
                        },
                    },
                    "bench",
                    0,
                )
            )
    return events


def run_benchmark(sizes, naive_queries: int = 20, indexed_queries: int = 2_000):
    rows = []
    speedups = {}
    stats: dict[int, dict[str, float]] = {}
    for size in sizes:
        ledger = Ledger()
        snapshots = populate(ledger, size)
        queries = _queries(snapshots, max(naive_queries, indexed_queries))

        indexer = MarketIndexer(ledger, MARKETPLACE)
        began = time.perf_counter()
        indexer.sync()
        build_seconds = time.perf_counter() - began
        indexer.best(queries[0])  # compile the touched bucket outside timers

        began = time.perf_counter()
        for query in queries[:indexed_queries]:
            indexer.best(query, sync=False)
        indexed_rate = indexed_queries / (time.perf_counter() - began)

        began = time.perf_counter()
        for query in queries[:naive_queries]:
            naive_best_listing(ledger, MARKETPLACE, query)
        naive_rate = naive_queries / (time.perf_counter() - began)

        mutations = _mutation_events(snapshots, min(1_000, size // 2))
        ledger.events.extend(mutations)
        began = time.perf_counter()
        indexer.sync()
        apply_rate = len(mutations) / (time.perf_counter() - began)

        speedup = indexed_rate / naive_rate
        speedups[size] = speedup
        stats[size] = {
            "build_events_per_sec": size / build_seconds,
            "indexed_queries_per_sec": indexed_rate,
            "naive_queries_per_sec": naive_rate,
            "apply_events_per_sec": apply_rate,
        }
        rows.append(
            [
                f"{size:,}",
                f"{size / build_seconds:,.0f}",
                f"{indexed_rate:,.0f}",
                f"{naive_rate:,.1f}",
                f"{speedup:,.0f}x",
                f"{apply_rate:,.0f}",
            ]
        )
    table = render_comparison(
        ["listings", "build ev/s", "indexed q/s", "naive q/s", "speedup", "apply ev/s"],
        rows,
        title="Listing discovery: incremental index vs full-ledger scan",
        note="indexed = sorted-prefix bisect + one vectorized pricing pass "
        "per query; naive = the v1 O(all objects) scan; apply = "
        "Sold/Delisted events folded in without a rescan.",
    )
    return table, speedups, stats


def test_bench_indexer_report():
    table, speedups, _ = run_benchmark(DEFAULT_SIZES)
    report("bench_indexer", table)
    assert speedups[100_000] >= MIN_SPEEDUP_AT_100K, speedups


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + relaxed bar (CI wiring check, not a measurement)",
    )
    parser.add_argument(
        "--full", action="store_true", help="include the 10^6-listing tier"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write machine-readable results to PATH"
    )
    args = parser.parse_args()
    if args.smoke:
        table, speedups, stats = run_benchmark(
            SMOKE_SIZES, naive_queries=10, indexed_queries=500
        )
        print(table)
        floor = MIN_SPEEDUP_SMOKE
    else:
        table, speedups, stats = run_benchmark(FULL_SIZES if args.full else DEFAULT_SIZES)
        report("bench_indexer", table)
        floor = MIN_SPEEDUP_AT_100K if 100_000 in speedups else MIN_SPEEDUP_SMOKE
    write_bench_json(
        args.json,
        [
            bench_result(
                f"indexer_{metric.removesuffix('_per_sec')}",
                {"listings": size},
                ops_per_sec=rate,
            )
            for size, rates in sorted(stats.items())
            for metric, rate in rates.items()
        ],
    )
    worst = min(speedups.values())
    assert worst >= floor, f"speedup {worst:.1f}x below the {floor:.0f}x bar"
    print(f"\nOK: worst speedup {worst:,.0f}x (bar {floor:.0f}x)")


if __name__ == "__main__":
    main()
