"""Table 1: gas and dollar cost of atomic buy-and-redeem per path length.

Regenerates the paper's headline control-plane cost table.  Each row is one
atomic transaction buying (worst-case-split) ingress+egress assets and
redeeming them for 1/2/4/8/16 hops on a fresh market.
"""

import argparse

import pytest

try:
    from benchmarks.conftest import (
        bench_result,
        deploy_chain,
        measure_op,
        report,
        write_bench_json,
    )
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import (
        bench_result,
        deploy_chain,
        measure_op,
        report,
        write_bench_json,
    )

from repro.analysis import render_comparison
from repro.controlplane import purchase_path
from repro.ledger.gas import SUI_PRICE_USD
from repro.scion.paths import as_crossings

HOPS = (1, 2, 4, 8, 16)

PAPER_TABLE1 = {
    # hops: (computation SUI, storage cost SUI, rebate SUI, total SUI, USD)
    1: (0.00075, 0.047, 0.016, 0.031, 0.038),
    2: (0.00075, 0.090, 0.029, 0.062, 0.076),
    4: (0.00075, 0.18, 0.054, 0.12, 0.15),
    8: (0.0015, 0.35, 0.10, 0.25, 0.30),
    16: (0.0030, 0.69, 0.20, 0.49, 0.60),
}


def run_purchase(hops: int):
    deployment, path = deploy_chain(hops)
    crossings = as_crossings(path)[:hops]
    host = deployment.new_host(funding_sui=1000)
    start = int(deployment.clock.now()) + 120
    return purchase_path(
        deployment, host, crossings, start=start, expiry=start + 600,
        bandwidth_kbps=4000,
    )


def _table1_report_impl():
    rows = []
    for hops in HOPS:
        outcome = run_purchase(hops)
        gas = outcome.gas
        paper = PAPER_TABLE1[hops]
        rows.append(
            [
                hops,
                f"{gas.computation_cost:.5f}",
                f"{paper[0]:.5f}",
                f"{gas.storage_cost:.3f}",
                f"{paper[1]:.3f}",
                f"{gas.storage_rebate:.3f}",
                f"{paper[2]:.3f}",
                f"{gas.total_sui:.3f}",
                f"{paper[3]:.3f}",
                f"{gas.total_usd:.3f}",
                f"{paper[4]:.3f}",
            ]
        )
        # Shape assertions: computation bucket identical, total within 25 %.
        assert gas.computation_cost == pytest.approx(paper[0])
        assert gas.total_sui == pytest.approx(paper[3], rel=0.25)
    text = render_comparison(
        [
            "hops",
            "comp", "paper",
            "storage", "paper",
            "rebate", "paper",
            "total SUI", "paper",
            "USD", "paper",
        ],
        rows,
        title="Table 1 — atomic buy-and-redeem cost (measured vs paper)",
        note=f"SUI price {SUI_PRICE_USD} USD; cost dominated by storage; "
        "linear in path length; computation buckets 1000/1000/1000/2000/4000.",
    )
    report("table1_atomic_cost", text)


def test_bench_atomic_buy_and_redeem_4hops(benchmark):
    """Wall-clock of the whole atomic purchase workflow (4 hops)."""
    deployment, path = deploy_chain(4)
    crossings = as_crossings(path)[:4]
    start = int(deployment.clock.now()) + 3600
    slot = [start]

    def once():
        host = deployment.new_host(funding_sui=1000)
        window = slot[0]
        slot[0] += 1200
        return purchase_path(
            deployment, host, crossings, start=window, expiry=window + 600,
            bandwidth_kbps=4000,
        )

    outcome = benchmark.pedantic(once, rounds=3, iterations=1, warmup_rounds=0)
    assert len(outcome.reservations) == 4


def test_table1_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_table1_report_impl, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hops", type=int, default=4, help="path length")
    parser.add_argument("--rounds", type=int, default=3,
                        help="purchases to time (each gets a fresh host + window)")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    deployment, path = deploy_chain(args.hops)
    crossings = as_crossings(path)[: args.hops]
    slot = [int(deployment.clock.now()) + 3600]

    def once():
        host = deployment.new_host(funding_sui=1000)
        window = slot[0]
        slot[0] += 1200
        purchase_path(
            deployment, host, crossings, start=window, expiry=window + 600,
            bandwidth_kbps=4000,
        )

    stats = measure_op(once, samples=args.rounds, warmup=0)
    results = [
        bench_result("table1_atomic_buy_and_redeem", {"hops": args.hops}, **stats)
    ]
    print(f"h={args.hops}: p50 {stats['p50']:.3f}s wall per atomic purchase")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
