"""Table 1: gas and dollar cost of atomic buy-and-redeem per path length.

Regenerates the paper's headline control-plane cost table.  Each row is one
atomic transaction buying (worst-case-split) ingress+egress assets and
redeeming them for 1/2/4/8/16 hops on a fresh market.
"""

import pytest

from benchmarks.conftest import deploy_chain, report

from repro.analysis import render_comparison
from repro.controlplane import purchase_path
from repro.ledger.gas import SUI_PRICE_USD
from repro.scion.paths import as_crossings

HOPS = (1, 2, 4, 8, 16)

PAPER_TABLE1 = {
    # hops: (computation SUI, storage cost SUI, rebate SUI, total SUI, USD)
    1: (0.00075, 0.047, 0.016, 0.031, 0.038),
    2: (0.00075, 0.090, 0.029, 0.062, 0.076),
    4: (0.00075, 0.18, 0.054, 0.12, 0.15),
    8: (0.0015, 0.35, 0.10, 0.25, 0.30),
    16: (0.0030, 0.69, 0.20, 0.49, 0.60),
}


def run_purchase(hops: int):
    deployment, path = deploy_chain(hops)
    crossings = as_crossings(path)[:hops]
    host = deployment.new_host(funding_sui=1000)
    start = int(deployment.clock.now()) + 120
    return purchase_path(
        deployment, host, crossings, start=start, expiry=start + 600,
        bandwidth_kbps=4000,
    )


def _table1_report_impl():
    rows = []
    for hops in HOPS:
        outcome = run_purchase(hops)
        gas = outcome.gas
        paper = PAPER_TABLE1[hops]
        rows.append(
            [
                hops,
                f"{gas.computation_cost:.5f}",
                f"{paper[0]:.5f}",
                f"{gas.storage_cost:.3f}",
                f"{paper[1]:.3f}",
                f"{gas.storage_rebate:.3f}",
                f"{paper[2]:.3f}",
                f"{gas.total_sui:.3f}",
                f"{paper[3]:.3f}",
                f"{gas.total_usd:.3f}",
                f"{paper[4]:.3f}",
            ]
        )
        # Shape assertions: computation bucket identical, total within 25 %.
        assert gas.computation_cost == pytest.approx(paper[0])
        assert gas.total_sui == pytest.approx(paper[3], rel=0.25)
    text = render_comparison(
        [
            "hops",
            "comp", "paper",
            "storage", "paper",
            "rebate", "paper",
            "total SUI", "paper",
            "USD", "paper",
        ],
        rows,
        title="Table 1 — atomic buy-and-redeem cost (measured vs paper)",
        note=f"SUI price {SUI_PRICE_USD} USD; cost dominated by storage; "
        "linear in path length; computation buckets 1000/1000/1000/2000/4000.",
    )
    report("table1_atomic_cost", text)


def test_bench_atomic_buy_and_redeem_4hops(benchmark):
    """Wall-clock of the whole atomic purchase workflow (4 hops)."""
    deployment, path = deploy_chain(4)
    crossings = as_crossings(path)[:4]
    start = int(deployment.clock.now()) + 3600
    slot = [start]

    def once():
        host = deployment.new_host(funding_sui=1000)
        window = slot[0]
        slot[0] += 1200
        return purchase_path(
            deployment, host, crossings, start=window, expiry=window + 600,
            bandwidth_kbps=4000,
        )

    outcome = benchmark.pedantic(once, rounds=3, iterations=1, warmup_rounds=0)
    assert len(outcome.reservations) == 4


def test_table1_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_table1_report_impl, rounds=1, iterations=1)
