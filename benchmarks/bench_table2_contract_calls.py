"""Table 2: gas cost of every individual contract call.

Reproduces Appendix B.1: asset functions (issue, splits, fuses, redeem,
deliver) and market functions (create, register, list, the four buy
variants).  Negative totals mean the storage rebate exceeded the cost.
"""

import argparse
import random

import pytest

try:
    from benchmarks.conftest import bench_result, measure_op, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_op, report, write_bench_json

from repro.analysis import render_comparison
from repro.contracts.asset import AssetContract
from repro.contracts.coin import CoinContract
from repro.contracts.market import MarketContract
from repro.controlplane.pki import CpPki
from repro.ledger.accounts import Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.transactions import Command, Transaction
from repro.scion.addresses import IsdAs

PAPER_TABLE2 = {
    "issue": 0.0029,
    "split_time": 0.0029,
    "split_bandwidth": 0.0029,
    "fuse_time": -0.0013,
    "fuse_bandwidth": -0.0013,
    "redeem": 0.00012,
    "deliver_reservation": -0.0027,
    "create_marketplace": 0.0028,
    "register_seller": 0.0024,
    "create_listing": 0.0050,
    "buy (full)": -0.0023,
    "buy (split bw)": 0.0039,
    "buy (split time)": 0.010,
    "buy (split both)": 0.016,
}


class World:
    """A scripted single-AS market for exercising each call in isolation."""

    def __init__(self) -> None:
        rng = random.Random(2)
        pki = CpPki(seed=2)
        self.ledger = Ledger()
        self.ledger.register_contract(CoinContract())
        self.ledger.register_contract(AssetContract(pki))
        self.ledger.register_contract(MarketContract())
        self.as_account = Account.generate(rng, "as")
        self.buyer = Account.generate(rng, "buyer")
        certificate = pki.issue_certificate(IsdAs(1, 7), self.as_account.signing_key.public)
        proof = self.as_account.signing_key.sign(self.as_account.address.encode(), rng)
        self.token = self.run(
            self.as_account, "asset", "register_as",
            certificate=certificate, commitment=proof.commitment, response=proof.response,
        ).returns[0]["token"]
        self.coin = self.run(
            self.buyer, "coin", "mint", amount=sui_to_mist(100)
        ).returns[0]["coin"]

    def run(self, account, contract, function, **args):
        effects = self.ledger.execute(
            Transaction(account.address, [Command(contract, function, args)])
        )
        assert effects.ok, f"{function}: {effects.error}"
        return effects

    def issue(self, interface=1, is_ingress=True, bw=1_000_000):
        return self.run(
            self.as_account, "asset", "issue",
            token=self.token, bandwidth_kbps=bw, start=0, expiry=3600,
            interface=interface, is_ingress=is_ingress, granularity=60,
            min_bandwidth_kbps=100,
        )

    def listed(self, marketplace, interface=1, is_ingress=True):
        asset = self.issue(interface, is_ingress).returns[0]["asset"]
        return self.run(
            self.as_account, "market", "create_listing",
            marketplace=marketplace, asset=asset, price_micromist_per_unit=50,
        ).returns[0]["listing"]


def _table2_report_impl():
    world = World()
    measured = {}

    measured["issue"] = world.issue().gas
    asset = world.issue().returns[0]["asset"]
    split = world.run(world.as_account, "asset", "split_time", asset=asset, split_at=1800)
    measured["split_time"] = split.gas
    measured["fuse_time"] = world.run(
        world.as_account, "asset", "fuse_time",
        first=split.returns[0]["first"], second=split.returns[0]["second"],
    ).gas
    split_bw = world.run(
        world.as_account, "asset", "split_bandwidth", asset=asset, bandwidth_kbps=400_000
    )
    measured["split_bandwidth"] = split_bw.gas
    measured["fuse_bandwidth"] = world.run(
        world.as_account, "asset", "fuse_bandwidth",
        first=split_bw.returns[0]["first"], second=split_bw.returns[0]["second"],
    ).gas

    ingress = world.issue(1, True).returns[0]["asset"]
    egress = world.issue(2, False).returns[0]["asset"]
    redeem = world.run(
        world.as_account, "asset", "redeem",
        ingress=ingress, egress=egress, public_key=bytes(256),
    )
    measured["redeem"] = redeem.gas
    measured["deliver_reservation"] = world.run(
        world.as_account, "asset", "deliver_reservation",
        request=redeem.returns[0]["request"],
        kem_share=bytes(256), ciphertext=bytes(200), tag=bytes(16),
    ).gas

    created = world.run(world.as_account, "market", "create_marketplace")
    marketplace = created.returns[0]["marketplace"]
    measured["create_marketplace"] = created.gas
    measured["register_seller"] = world.run(
        world.as_account, "market", "register_seller", marketplace=marketplace
    ).gas
    listing = world.listed(marketplace)
    measured["create_listing"] = world.run(
        world.as_account, "market", "create_listing",
        marketplace=marketplace, asset=world.issue().returns[0]["asset"],
        price_micromist_per_unit=50,
    ).gas

    def buy(listing_id, start, expiry, bw):
        return world.run(
            world.buyer, "market", "buy",
            marketplace=marketplace, listing=listing_id,
            start=start, expiry=expiry, bandwidth_kbps=bw, payment=world.coin,
        ).gas

    measured["buy (full)"] = buy(world.listed(marketplace), 0, 3600, 1_000_000)
    measured["buy (split bw)"] = buy(world.listed(marketplace), 0, 3600, 4_000)
    measured["buy (split time)"] = buy(world.listed(marketplace), 600, 1200, 1_000_000)
    measured["buy (split both)"] = buy(world.listed(marketplace), 600, 1200, 4_000)

    rows = []
    for name, paper_total in PAPER_TABLE2.items():
        gas = measured[name]
        rows.append(
            [
                name,
                f"{gas.computation_cost:.5f}",
                f"{gas.storage_cost:.4f}",
                f"{gas.storage_rebate:.4f}",
                f"{gas.total_sui:+.4f}",
                f"{paper_total:+.4f}",
            ]
        )
        # Sign agreement is the headline property (fuses/deliver earn SUI).
        assert (gas.total_sui < 0) == (paper_total < 0), name
    text = render_comparison(
        ["contract call", "comp", "storage", "rebate", "total SUI", "paper total"],
        rows,
        title="Table 2 — per-call gas cost (measured vs paper totals)",
        note="All calls land in the 1000-unit computation bucket (0.00075 SUI); "
        "signs match the paper: fuse/deliver/buy-full net negative.",
    )
    report("table2_contract_calls", text)


def test_bench_issue_call(benchmark):
    world = World()

    def once():
        return world.issue()

    effects = benchmark.pedantic(once, rounds=5, iterations=1)
    assert effects.ok


def test_table2_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_table2_report_impl, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--samples", type=int, default=50, help="issue calls to time")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    world = World()
    stats = measure_op(lambda: world.issue(), samples=args.samples, warmup=2)
    results = [
        bench_result(
            "table2_issue_call", {"bandwidth_kbps": 1_000_000}, **stats
        )
    ]
    print(f"issue: {stats['ops_per_sec']:.0f} calls/s, p50 {stats['p50'] * 1e6:.0f} µs")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
