"""Sealed-bid auction clearing throughput at 10^4..10^5 bids per window.

``settle_auction`` re-runs :func:`repro.admission.auction.uniform_price_clearing`
on-chain, so the clearing rule is on the consensus critical path: a popular
window can easily attract 10^5 sealed bids, and the settle transaction must
still clear in well under a second.  This bench fabricates bid books of
growing size (lognormal-ish price spread, granular bandwidths) and reports

* **clear bids/sec** — plain uniform-price clearing (sort + greedy fill);
* **capped bids/sec** — the same with a proportional-share cap and a
  minimum-fragment rule switched on (the fully featured contract path);
* **place bids/sec** — :class:`~repro.admission.WindowAuction` book
  appends, the AS-side mirror of ``BidPlaced`` events.

Acceptance bar: >= 100k cleared bids/sec at 10^5 bids (>= 20k in --smoke).

Run:  PYTHONPATH=src python benchmarks/bench_auction.py [--smoke | --full]
  or: PYTHONPATH=src python -m pytest benchmarks/bench_auction.py -q
"""

from __future__ import annotations

import argparse
import random
import time

try:
    from benchmarks.conftest import bench_result, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, report, write_bench_json

from repro.admission import Bid, WindowAuction, uniform_price_clearing
from repro.analysis import render_comparison

SUPPLY_KBPS = 10_000_000  # a 10 Gbps window up for auction
RESERVE = 50
MIN_BW = 100

DEFAULT_SIZES = (10_000, 100_000)
FULL_SIZES = (10_000, 100_000, 300_000)
SMOKE_SIZES = (2_000,)

MIN_CLEAR_RATE = 100_000.0
MIN_CLEAR_RATE_SMOKE = 20_000.0


def fabricate_bids(count: int, seed: int = 7) -> list[Bid]:
    """A contended book: many more kbps demanded than the supply offers."""
    rng = random.Random(seed)
    bids = []
    for seq in range(count):
        bids.append(
            Bid(
                bidder=f"host-{seq % (count // 4 + 1)}",  # repeat bidders: caps bite
                bandwidth_kbps=rng.randrange(MIN_BW, 10_000, 100),
                price_micromist_per_unit=max(1, int(rng.lognormvariate(4.0, 0.8))),
                seq=seq,
            )
        )
    return bids


def run_benchmark(sizes):
    rows = []
    clear_rates = {}
    for size in sizes:
        bids = fabricate_bids(size)

        began = time.perf_counter()
        plain = uniform_price_clearing(bids, SUPPLY_KBPS, RESERVE)
        clear_rate = size / (time.perf_counter() - began)

        began = time.perf_counter()
        capped = uniform_price_clearing(
            bids,
            SUPPLY_KBPS,
            RESERVE,
            share_cap_kbps=SUPPLY_KBPS // 4,
            total_kbps=SUPPLY_KBPS,
            min_fragment_kbps=MIN_BW,
        )
        capped_rate = size / (time.perf_counter() - began)

        auction = WindowAuction(
            interface=1, is_ingress=True, start=0, end=600,
            offered_kbps=SUPPLY_KBPS, reserve_micromist=RESERVE,
        )
        began = time.perf_counter()
        for bid in bids:
            auction.place(bid.bidder, bid.bandwidth_kbps, bid.price_micromist_per_unit)
        place_rate = size / (time.perf_counter() - began)

        clear_rates[size] = clear_rate
        rows.append(
            [
                f"{size:,}",
                f"{clear_rate:,.0f}",
                f"{capped_rate:,.0f}",
                f"{place_rate:,.0f}",
                f"{len(plain.winners):,}",
                f"{plain.clearing_price_micromist:,}",
                f"{len(capped.winners):,}",
            ]
        )
    table = render_comparison(
        [
            "bids", "clear b/s", "capped b/s", "place b/s",
            "winners", "clearing µMIST", "capped winners",
        ],
        rows,
        title="Sealed-bid uniform-price clearing throughput",
        note="clear = sort by (-price, seq) + greedy fill; capped adds the "
        "proportional-share cap and the minimum-fragment rule (the full "
        "settle_auction path); place = WindowAuction book appends.",
    )
    return table, clear_rates


def test_bench_auction_report():
    table, clear_rates = run_benchmark(DEFAULT_SIZES)
    report("bench_auction", table)
    assert clear_rates[100_000] >= MIN_CLEAR_RATE, clear_rates


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + relaxed bar (CI wiring check, not a measurement)",
    )
    parser.add_argument(
        "--full", action="store_true", help="include the 3x10^5-bid tier"
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write machine-readable results to PATH"
    )
    args = parser.parse_args()
    if args.smoke:
        table, clear_rates = run_benchmark(SMOKE_SIZES)
        print(table)
        floor = MIN_CLEAR_RATE_SMOKE
    else:
        table, clear_rates = run_benchmark(FULL_SIZES if args.full else DEFAULT_SIZES)
        report("bench_auction", table)
        floor = MIN_CLEAR_RATE if 100_000 in clear_rates else MIN_CLEAR_RATE_SMOKE
    write_bench_json(
        args.json,
        [
            bench_result(
                "auction_clear",
                {"bids": size, "supply_kbps": SUPPLY_KBPS, "reserve": RESERVE},
                ops_per_sec=rate,
            )
            for size, rate in sorted(clear_rates.items())
        ],
    )
    worst = min(clear_rates.values())
    assert worst >= floor, f"clear rate {worst:,.0f} bids/s below the {floor:,.0f} bar"
    print(f"\nOK: worst clear rate {worst:,.0f} bids/s (bar {floor:,.0f})")


if __name__ == "__main__":
    main()
