"""Figure 15: single-core source generation throughput vs payload size."""

import argparse

import pytest

try:
    from benchmarks.conftest import bench_result, measure_op, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_op, report, write_bench_json

from repro.analysis import line_plot, render_comparison
from repro.perfmodel.scaling import (
    FIG14_HOPS,
    FIG15_PAYLOADS,
    fig15_singlecore_series,
)


def _fig15_report_impl():
    series = fig15_singlecore_series()
    rows = []
    for hops in FIG14_HOPS:
        hb = dict(series[("hummingbird", hops)])
        scion = dict(series[("scion", hops)])
        for payload in FIG15_PAYLOADS:
            rows.append(
                [hops, payload, f"{hb[payload]:.2f}", f"{scion[payload]:.2f}"]
            )
    table = render_comparison(
        ["hops", "payload B", "Hummingbird Gbps", "SCION Gbps"],
        rows,
        title="Figure 15 — single-core generation throughput "
        "(paper-calibrated model)",
        note="paper data points at h=4: 1 kB -> 17.90 vs 28.64 Gbps; "
        "100 B -> 4.65 vs 7.70 Gbps.",
    )
    plot = line_plot(
        {f"hummingbird h={h}": series[("hummingbird", h)] for h in (1, 4, 16)}
        | {"scion h=4": series[("scion", 4)]},
        title="Fig 15: single-core throughput [Gbps] vs payload [B]",
        x_label="payload B",
        y_label="Gbps",
    )
    report("fig15_generation_singlecore", table + "\n\n" + plot)

    # Paper's §B.3 data points (1 kB matches ~1%, 100 B within L1-framing slack).
    hb4 = dict(series[("hummingbird", 4)])
    scion4 = dict(series[("scion", 4)])
    assert hb4[1000] == pytest.approx(17.90, rel=0.10)
    assert scion4[1000] == pytest.approx(28.64, rel=0.10)
    # Throughput scales with payload and against hop count.
    for hops in FIG14_HOPS:
        curve = dict(series[("hummingbird", hops)])
        assert curve[1500] > curve[100]


def test_bench_fig15_series_generation(benchmark):
    benchmark(fig15_singlecore_series)


def test_fig15_report(benchmark):
    """Regenerate the report once (timed as a single benchmark round)."""
    benchmark.pedantic(_fig15_report_impl, rounds=1, iterations=1)


def main() -> None:
    from repro.perfmodel.measure import build_fixture

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--payloads", type=int, nargs="*", default=[100, 500, 1500],
                        help="payload sizes to sample (bytes)")
    parser.add_argument("--samples", type=int, default=300, help="packets to time")
    parser.add_argument("--json", metavar="PATH",
                        help="write machine-readable results to PATH")
    args = parser.parse_args()
    results = []
    for payload_size in args.payloads:
        fixture = build_fixture(hops=4, payload=payload_size)
        payload = bytes(payload_size)
        stats = measure_op(
            lambda: fixture.hb_source.build_packet(payload), samples=args.samples
        )
        results.append(
            bench_result(
                "fig15_hummingbird_generation",
                {"hops": 4, "payload": payload_size},
                **stats,
            )
        )
        print(f"payload={payload_size}B: p50 {stats['p50'] * 1e9:.0f} ns/pkt")
    write_bench_json(args.json, results)


if __name__ == "__main__":
    main()
