"""Deadline-transfer planning throughput and the plateau-skip payoff.

Two measurements over a synthetic in-memory listing book (3 hops, both
directions tiled with staggered, price-varied listings — many covering
segments, real valleys):

* **plan** — full ``plan_on_book`` calls per second: option enumeration,
  density-greedy scheduling with valley-edge trimming, leg assembly.
  This is the hot path a transfer-heavy host pays per request.
* **plateau-skip A/B** — ``all_slot_options`` with segment plateau
  skipping (covering sets computed once per constant segment) vs the
  naive per-slot search, same book, same options out.

Floor (CI): at the full scale (240 slots) the planner must produce
>= 40 plans/s and plateau-skip must not be slower than naive.

Usage: PYTHONPATH=src python benchmarks/bench_transfers.py
   or: PYTHONPATH=src python benchmarks/bench_transfers.py --smoke
"""

import argparse
import time
from types import SimpleNamespace

try:
    from benchmarks.conftest import bench_result, report, write_bench_json
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, report, write_bench_json

from repro.analysis import render_comparison
from repro.transfers import (
    BookListing,
    DeadlineTransfer,
    TransferBook,
    TransferPlanner,
)

T0 = 1_700_000_400  # multiple of 60: every tiled listing shares the lattice
HOPS = 3
GRANULARITY = 60
BANDWIDTH_KBPS = 10_000
MIN_BANDWIDTH_KBPS = 100

FULL_SLOTS = 240
SMOKE_SLOTS = 40
FLOOR_PLANS_PER_SEC = 40.0
FLOOR_SKIP_SPEEDUP = 1.0


def build_book(slots: int) -> tuple[TransferBook, DeadlineTransfer]:
    """A staggered, price-varied book: every direction tiles the horizon
    with several listings whose boundaries interleave across directions
    (many covering segments) and whose prices alternate peak/valley."""
    horizon = slots * GRANULARITY
    crossings = [
        SimpleNamespace(isd_as=f"1-{hop}", ingress=1, egress=2)
        for hop in range(HOPS)
    ]
    directions = {}
    for hop in range(HOPS):
        for is_ingress in (True, False):
            key = (hop, is_ingress)
            tiles = 4 + (hop + (0 if is_ingress else 1)) % 3
            edges = [
                T0 + (horizon * t // tiles) // GRANULARITY * GRANULARITY
                for t in range(tiles)
            ] + [T0 + horizon]
            listings = []
            for t in range(tiles):
                price = 30 if (t + hop) % 2 else 90  # valley / peak
                listings.append(
                    BookListing(
                        listing_id=f"L{hop}-{int(is_ingress)}-{t}",
                        unit_price=price,
                        bandwidth_kbps=BANDWIDTH_KBPS,
                        min_bandwidth_kbps=MIN_BANDWIDTH_KBPS,
                        start=edges[t],
                        expiry=edges[t + 1],
                        granularity=GRANULARITY,
                    )
                )
            directions[key] = listings
    book = TransferBook(crossings, T0, T0 + horizon, directions)
    capacity = BANDWIDTH_KBPS * horizon * 125
    transfer = DeadlineTransfer(
        crossings=tuple(crossings),
        bytes_total=int(capacity * 0.4),
        release=T0,
        deadline=T0 + horizon,
    )
    return book, transfer


def transfer_plan_comparison(slots: int):
    """Time planning and the plateau-skip A/B at ``slots`` grid slots."""
    book, transfer = build_book(slots)
    planner = TransferPlanner(indexer=None)
    metrics: dict[str, dict] = {}

    rounds = 0
    began = time.perf_counter()
    while (elapsed := time.perf_counter() - began) < 0.5 or rounds < 3:
        plan = planner.plan_on_book(book, transfer)
        rounds += 1
    assert plan.meets_request
    metrics["plan"] = {
        "ops_per_sec": rounds / elapsed,
        "slots": len(book.slots),
    }

    for label, skip in (("options_skip", True), ("options_naive", False)):
        rounds = 0
        began = time.perf_counter()
        while (elapsed := time.perf_counter() - began) < 0.5 or rounds < 3:
            options = book.all_slot_options(
                target_bytes=transfer.bytes_total, plateau_skip=skip
            )
            rounds += 1
        assert len(options) == len(book.slots)
        metrics[label] = {
            "ops_per_sec": rounds / elapsed,
            "slots": len(book.slots),
        }
    metrics["plateau_speedup"] = {
        "ops_per_sec": metrics["options_skip"]["ops_per_sec"]
        / metrics["options_naive"]["ops_per_sec"],
        "slots": len(book.slots),
    }
    rows = [
        [label, f"{stats['ops_per_sec']:,.1f}", f"{stats['slots']:,}"]
        for label, stats in metrics.items()
    ]
    return rows, metrics


def _render(rows, scale_note: str) -> str:
    return render_comparison(
        ["measure", "ops/s (speedup for plateau_speedup)", "slots"],
        rows,
        title=f"Deadline-transfer planning {scale_note} — full plans, then "
        "plateau-skip vs naive option enumeration",
        note=f"floor: >= {FLOOR_PLANS_PER_SEC:,.0f} plans/s and plateau "
        f"speedup >= {FLOOR_SKIP_SPEEDUP:.1f}x at {FULL_SLOTS} slots.",
    )


def floor_applies() -> bool:
    return True  # single-process, synthetic book: no machine-shape caveats


def enforce_floor(metrics: dict) -> None:
    plans = metrics["plan"]["ops_per_sec"]
    speedup = metrics["plateau_speedup"]["ops_per_sec"]
    assert plans >= FLOOR_PLANS_PER_SEC, (
        f"planning at {plans:,.1f} plans/s is below the "
        f"{FLOOR_PLANS_PER_SEC:,.0f}/s floor"
    )
    assert speedup >= FLOOR_SKIP_SPEEDUP, (
        f"plateau-skip at {speedup:.2f}x naive is below the "
        f"{FLOOR_SKIP_SPEEDUP:.1f}x floor"
    )


def _json_rows(metrics: dict, slots: int) -> list[dict]:
    return [
        bench_result(
            f"transfer_{label}",
            {"slots": slots, "hops": HOPS},
            ops_per_sec=stats["ops_per_sec"],
        )
        for label, stats in metrics.items()
    ]


def test_transfer_plan_smoke_report(benchmark):
    """CI-sized book; the plans/sec floor always applies."""

    def run():
        rows, metrics = transfer_plan_comparison(SMOKE_SLOTS)
        report("bench_transfers_smoke", _render(rows, "(smoke)"))
        enforce_floor(metrics)

    benchmark.pedantic(run, rounds=1, iterations=1)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"CI-sized run: {SMOKE_SLOTS} grid slots instead of {FULL_SLOTS}",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write machine-readable results to PATH"
    )
    parser.add_argument(
        "--no-floor",
        action="store_true",
        help="skip the throughput floor assertions",
    )
    args = parser.parse_args()
    slots = SMOKE_SLOTS if args.smoke else FULL_SLOTS
    scale_note = "(smoke)" if args.smoke else f"({FULL_SLOTS} slots)"
    rows, metrics = transfer_plan_comparison(slots)
    report("bench_transfers", _render(rows, scale_note))
    if not args.no_floor:
        enforce_floor(metrics)
    write_bench_json(args.json, _json_rows(metrics, slots))


if __name__ == "__main__":
    main()
