"""Path-wide admission throughput: atomic screen/commit/rollback cycles.

A path-wide grant multiplies the admission hot path by the hop count:
every cycle admits (and later releases) the window on *both* interface
directions of every hop, through each hop's own
:class:`~repro.admission.AdmissionController`.  This bench builds 2- and
4-hop :class:`~repro.pathadm.PathAdmission` coordinators over preloaded
calendars — sharded and monolithic — and measures full
screen → commit → rollback cycles, the constant-state version of the
two-phase protocol (rollback re-subtracts exactly what screen added, so
the calendars never grow and every sample sees the same load).

Acceptance bar: >= 6,000 admitted paths/sec at 2 hops on sharded
calendars (``shard_seconds`` set).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_path_admission.py -q
  or: PYTHONPATH=src python benchmarks/bench_path_admission.py --smoke
"""

from __future__ import annotations

import argparse
import time

import numpy as np

try:
    from benchmarks.conftest import (
        bench_result,
        measure_ab,
        measure_op,
        report,
        write_bench_json,
    )
except ImportError:  # executed as a script from the benchmarks/ directory
    from conftest import bench_result, measure_ab, measure_op, report, write_bench_json

from repro.admission import ISSUED, AdmissionController
from repro.analysis import render_comparison
from repro.pathadm import PathAdmission, PathHop
from repro.telemetry import get_registry

HORIZON = 1_000_000.0  # seconds of calendar time the preload spreads over
CAPACITY_KBPS = 100_000_000  # 100 Gbps per interface direction
SHARD_SECONDS = 86_400.0
PATH_KBPS = 4_000
HOP_COUNTS = (2, 4)
PRELOAD = 5_000  # background reservations per interface direction
PRELOAD_SMOKE = 1_000
SAMPLES = 2_000
SAMPLES_SMOKE = 300
MIN_PATHS_PER_SEC_2HOP_SHARDED = 6_000


def _hop_controller(
    shard_seconds: float | None,
    preload: int,
    seed: int,
    telemetry: bool | None = None,
):
    """One AS's controller with both crossed directions preloaded."""
    controller = AdmissionController(
        CAPACITY_KBPS, shard_seconds=shard_seconds, telemetry=telemetry
    )
    rng = np.random.default_rng(seed)
    for interface, is_ingress in ((1, True), (2, False)):
        starts = rng.uniform(0, HORIZON, preload)
        durations = rng.uniform(60, 7200, preload)
        bandwidths = rng.integers(100, 4000, preload)
        controller.calendar(interface, is_ingress, ISSUED).commit_batch(
            bandwidths, starts, starts + durations, track=False
        )
    return controller


def build_path(
    hops: int,
    shard_seconds: float | None,
    preload: int = PRELOAD,
    telemetry: bool | None = None,
) -> PathAdmission:
    return PathAdmission(
        [
            PathHop(
                name=f"as{index}",
                controller=_hop_controller(
                    shard_seconds, preload, seed=17 + index, telemetry=telemetry
                ),
                ingress_interface=1,
                egress_interface=2,
            )
            for index in range(hops)
        ],
        telemetry=telemetry,
    )


def _cycle(path: PathAdmission, seed: int = 11):
    """Closure running one full screen -> commit -> rollback cycle.

    Windows rotate through a precomputed spread so successive samples hit
    different calendar regions (different shards, different boundary
    neighbourhoods) instead of hammering one hot point.
    """
    rng = np.random.default_rng(seed)
    starts = rng.uniform(0, HORIZON - 7200, 1024)
    ends = starts + rng.uniform(60, 7200, 1024)
    state = {"index": 0}

    def run():
        index = state["index"]
        state["index"] = (index + 1) % len(starts)
        ticket = path.screen(
            PATH_KBPS, float(starts[index]), float(ends[index]), tag="bench"
        )
        if not ticket.admitted:
            raise AssertionError(ticket.reason)
        path.commit(ticket)
        path.rollback(ticket)

    return run


def path_admission_rates(preload: int = PRELOAD, samples: int = SAMPLES):
    """``{(hops, variant): measure_op dict}`` over sharded and monolithic."""
    rates = {}
    for hops in HOP_COUNTS:
        for variant, shard_seconds in (
            ("sharded", SHARD_SECONDS),
            ("monolithic", None),
        ):
            path = build_path(hops, shard_seconds, preload=preload)
            rates[(hops, variant)] = measure_op(
                _cycle(path), samples=samples, warmup=20
            )
    return rates


def _table(rates, preload: int) -> str:
    rows = [
        [
            str(hops),
            variant,
            f"{stats['ops_per_sec']:,.0f}",
            f"{stats['ops_per_sec'] * hops * 2:,.0f}",
            f"{stats['p50'] * 1e6:,.0f}",
            f"{stats['p99'] * 1e6:,.0f}",
        ]
        for (hops, variant), stats in sorted(rates.items())
    ]
    return render_comparison(
        ["hops", "calendar", "paths/s", "hop admits/s", "p50 us", "p99 us"],
        rows,
        title="Atomic path admission: screen+commit+rollback cycles/sec "
        f"({preload:,} background reservations per interface direction)",
        note="each cycle admits and releases both directions of every hop; "
        f"rollback leaves calendars byte-identical, so every sample sees "
        f"the same load. shard width {SHARD_SECONDS:.0f}s.",
    )


def test_bench_path_admission_report():
    rates = path_admission_rates(preload=PRELOAD, samples=500)
    report("bench_path_admission", _table(rates, PRELOAD))
    assert (
        rates[(2, "sharded")]["ops_per_sec"] >= MIN_PATHS_PER_SEC_2HOP_SHARDED
    ), rates


def path_admission_ab(preload: int, samples: int) -> dict:
    """Armed-vs-disarmed path-cycle overhead, paired in one process.

    ONE 2-hop sharded path runs interleaved screen/commit/rollback
    cycles with its telemetry flags (coordinator + every hop controller)
    flipped per arm, so both arms share calendars, caches, and memory
    layout and differ only in the guarded branches.  The flag writes
    cost both arms the same and cancel out; interleaving keeps
    multi-second CPU-throttle windows hitting both arms equally.  Needs
    ``REPRO_TELEMETRY=1``.
    """
    if not get_registry().enabled:
        raise SystemExit("--ab-overhead needs REPRO_TELEMETRY=1 (live registry)")
    path = build_path(2, SHARD_SECONDS, preload=preload, telemetry=True)
    cycle = _cycle(path)

    def arm(enabled: bool):
        def run():
            path._telemetry = enabled
            for hop in path.hops:
                hop.controller._telemetry = enabled
            cycle()

        return run

    return measure_ab(arm(True), arm(False), samples=samples, warmup=20)


def _json_rows(rates) -> list[dict]:
    telemetry_mode = "on" if get_registry().enabled else "off"
    return [
        bench_result(
            "path_admission_admit",
            {"hops": hops, "shard": variant, "telemetry": telemetry_mode},
            ops_per_sec=stats["ops_per_sec"],
            p50=stats["p50"],
            p99=stats["p99"],
        )
        for (hops, variant), stats in sorted(rates.items())
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run (smaller preload and sample count, no floor)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write machine-readable results to PATH"
    )
    parser.add_argument(
        "--ab-overhead",
        action="store_true",
        help="only measure armed-vs-disarmed telemetry overhead on 2-hop "
        "sharded cycles (paired interleaved A/B; needs REPRO_TELEMETRY=1)",
    )
    args = parser.parse_args()
    preload = PRELOAD_SMOKE if args.smoke else PRELOAD
    samples = SAMPLES_SMOKE if args.smoke else SAMPLES
    if args.ab_overhead:
        stats = path_admission_ab(preload, samples)
        print(
            f"2-hop sharded path telemetry overhead: {stats['overhead']:+.1%} "
            f"(p50 on {stats['p50_on'] * 1e6:,.1f} us / "
            f"off {stats['p50_off'] * 1e6:,.1f} us, {samples:,} paired cycles)"
        )
        write_bench_json(
            args.json,
            [
                {
                    "name": "path_admission_admit_ab",
                    "params": {"hops": 2, "shard": "sharded", "preload": preload},
                    **stats,
                }
            ],
        )
        return
    began = time.perf_counter()
    rates = path_admission_rates(preload=preload, samples=samples)
    print(_table(rates, preload))
    print(f"\ntotal bench time: {time.perf_counter() - began:.1f}s")
    write_bench_json(args.json, _json_rows(rates))
    if not args.smoke:
        floor = rates[(2, "sharded")]["ops_per_sec"]
        if floor < MIN_PATHS_PER_SEC_2HOP_SHARDED:
            raise SystemExit(
                f"2-hop sharded path admission {floor:,.0f}/s below "
                f"{MIN_PATHS_PER_SEC_2HOP_SHARDED:,}/s"
            )


if __name__ == "__main__":
    main()
