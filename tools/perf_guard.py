#!/usr/bin/env python3
"""CI perf guard: the telemetry hooks must stay off the hot path.

Runs ``benchmarks/bench_admission.py --smoke --json`` twice per round —
once with ``REPRO_TELEMETRY`` unset (null registry) and once with
``REPRO_TELEMETRY=1`` (live registry) — and compares the
``admission_controller_admit`` throughput.  The two modes are interleaved
within each round (so slow machine drift hits both sides equally) and
best-of-N on each side absorbs scheduler noise.  Fails when the enabled
run is more than ``--threshold`` slower than the disabled one, i.e. when
instrumenting the admission hot path starts costing real throughput.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH = REPO_ROOT / "benchmarks" / "bench_admission.py"
ROW_NAME = "admission_controller_admit"


def _run_once(telemetry: bool, extra_args: list[str]) -> float:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.pop("REPRO_TELEMETRY", None)
    if telemetry:
        env["REPRO_TELEMETRY"] = "1"
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "bench.json"
        subprocess.run(
            [sys.executable, str(BENCH), "--smoke", "--json", str(out), *extra_args],
            check=True,
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
        )
        rows = json.loads(out.read_text())
    for row in rows:
        if row["name"] == ROW_NAME:
            expected = "on" if telemetry else "off"
            if row["params"].get("telemetry") != expected:
                raise SystemExit(
                    f"bench reported telemetry={row['params'].get('telemetry')!r}, "
                    f"expected {expected!r} — env plumbing is broken"
                )
            return float(row["ops_per_sec"])
    raise SystemExit(f"row {ROW_NAME!r} missing from {BENCH} --json output")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per mode; best-of-N is compared (default 3)")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max tolerated fractional slowdown (default 0.05)")
    args = parser.parse_args(argv)

    rates = {"off": [], "on": []}
    for round_index in range(args.repeats):
        # Alternate which mode goes first: the second run of a round sees
        # a warmer (or thermally throttled) machine, and that positional
        # bias must not land on one side only.
        order = (False, True) if round_index % 2 == 0 else (True, False)
        for telemetry in order:
            rates["on" if telemetry else "off"].append(_run_once(telemetry, []))
    best = {}
    for label in ("off", "on"):
        best[label] = max(rates[label])
        print(f"telemetry {label}: best {best[label]:,.0f} admits/s "
              f"of {[f'{r:,.0f}' for r in rates[label]]}")

    overhead = best["off"] / best["on"] - 1.0
    print(f"overhead with telemetry enabled: {overhead:+.1%} "
          f"(bar {args.threshold:.0%})")
    if overhead > args.threshold:
        print("FAIL: telemetry overhead exceeds the bar", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
