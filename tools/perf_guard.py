#!/usr/bin/env python3
"""CI perf guard: the telemetry hooks must stay off the hot path.

Runs each guarded benchmark in ``--ab-overhead`` mode: the bench drives
ONE component, flipping its telemetry flag between an armed op and a
disarmed op (whose per-op path is exactly the null-registry path), and
reports the median per-pair latency difference as the overhead.  Fails
when the armed arm is more than ``--threshold`` slower, i.e. when
instrumenting a hot path starts costing real throughput.

The paired design is the point: shared CI runners throttle the CPU in
multi-second windows, so comparing two *separate* bench runs (telemetry
on vs off via the environment) measures which run drew the slow window,
not the code — and even in-process arms drift percent-level apart when
run as separate blocks.  Back-to-back pairs on shared state cancel the
machine entirely; the residual per-run spread is well under a percent.
With ``--repeats`` > 1 the median overhead across repeats is enforced.

Guarded rows:

* ``admission_controller_admit_ab`` — single-interface admits
  (``bench_admission.py``);
* ``path_admission_admit_ab`` at 2 hops, sharded — full path-wide
  screen/commit/rollback cycles (``bench_path_admission.py``).

Besides the A/B overhead rows, ``FLOOR_TARGETS`` enforces absolute
throughput floors: the named row of a plain ``--smoke --json`` run must
report ``ops_per_sec`` at or above the floor (no paired design — these
floors carry enough headroom to absorb shared-runner noise).

* ``transfer_plan`` — full deadline-transfer plans per second over the
  synthetic staggered book (``bench_transfers.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import statistics
import subprocess
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# (bench script, guarded A/B row name, params the row must match)
TARGETS = [
    ("bench_admission.py", "admission_controller_admit_ab", {}),
    (
        "bench_path_admission.py",
        "path_admission_admit_ab",
        {"hops": 2, "shard": "sharded"},
    ),
]

# (bench script, row name, params the row must match, ops/sec floor)
FLOOR_TARGETS = [
    ("bench_transfers.py", "transfer_plan", {}, 40.0),
]


def _run_once(
    bench: pathlib.Path,
    row_name: str,
    params_match: dict,
    extra_args: list[str],
    mode_args: tuple[str, ...] = ("--smoke", "--ab-overhead"),
) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_TELEMETRY"] = "1"
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "bench.json"
        subprocess.run(
            [
                sys.executable,
                str(bench),
                *mode_args,
                "--json",
                str(out),
                *extra_args,
            ],
            check=True,
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
        )
        rows = json.loads(out.read_text())
    for row in rows:
        if row["name"] != row_name:
            continue
        params = row["params"]
        if any(params.get(key) != value for key, value in params_match.items()):
            continue
        return row
    raise SystemExit(
        f"row {row_name!r} matching {params_match} missing from {bench} "
        f"{' '.join(mode_args)} --json output"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="paired runs per target; the median overhead "
                        "is enforced (default 3)")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="max tolerated fractional slowdown (default 0.05)")
    args = parser.parse_args(argv)

    failed = False
    for bench_name, row_name, params_match in TARGETS:
        bench = REPO_ROOT / "benchmarks" / bench_name
        label_suffix = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(params_match.items())) + "]"
            if params_match
            else ""
        )
        print(f"== {row_name}{label_suffix} ({bench_name})")
        overheads = []
        for _ in range(args.repeats):
            row = _run_once(bench, row_name, params_match, [])
            overheads.append(row["overhead"])
            print(
                f"paired run: {row['overhead']:+.1%} "
                f"(p50 on {row['p50_on'] * 1e6:,.1f} us / "
                f"off {row['p50_off'] * 1e6:,.1f} us)"
            )
        overhead = statistics.median(overheads)
        print(f"median overhead with telemetry enabled: {overhead:+.1%} "
              f"(bar {args.threshold:.0%})")
        if overhead > args.threshold:
            print(f"FAIL: telemetry overhead exceeds the bar on {row_name}",
                  file=sys.stderr)
            failed = True
        else:
            print("OK")

    for bench_name, row_name, params_match, floor in FLOOR_TARGETS:
        bench = REPO_ROOT / "benchmarks" / bench_name
        print(f"== {row_name} floor ({bench_name})")
        rates = []
        for _ in range(args.repeats):
            row = _run_once(
                bench,
                row_name,
                params_match,
                ["--no-floor"],
                mode_args=("--smoke",),
            )
            rates.append(row["ops_per_sec"])
            print(f"run: {row['ops_per_sec']:,.1f} ops/s")
        rate = statistics.median(rates)
        print(f"median: {rate:,.1f} ops/s (floor {floor:,.1f})")
        if rate < floor:
            print(f"FAIL: {row_name} is below its throughput floor",
                  file=sys.stderr)
            failed = True
        else:
            print("OK")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
