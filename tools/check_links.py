#!/usr/bin/env python3
"""Markdown link checker for the docs job (stdlib only).

Verifies, for every ``[text](target)`` link in the given markdown files:

* relative file targets exist (resolved against the linking file);
* ``#anchor`` fragments — bare or after a file target — resolve to a
  heading in the target file, using GitHub's slugging rules (lowercase,
  spaces to dashes, punctuation dropped);
* external ``http(s)://`` targets are NOT fetched (CI must not depend on
  the network); they are only syntax-checked.

Exits non-zero listing every broken link, so docs/ cross-references and
README pointers cannot rot silently.

Run:  python tools/check_links.py README.md docs/*.md
"""

from __future__ import annotations

import pathlib
import re
import sys

LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, strip punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: pathlib.Path) -> set[str]:
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    return {github_slug(m.group(1)) for m in HEADING.finditer(text)}


def check_file(path: pathlib.Path) -> list[str]:
    problems = []
    text = CODE_FENCE.sub("", path.read_text(encoding="utf-8"))
    for match in LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path}: broken link -> {target} (missing {base})")
                continue
        else:
            resolved = path.resolve()
        if fragment:
            if resolved.suffix != ".md":
                continue  # anchors into non-markdown files are not checked
            if github_slug(fragment) not in anchors_of(resolved):
                problems.append(
                    f"{path}: broken anchor -> {target} "
                    f"(no heading #{fragment} in {resolved.name})"
                )
    return problems


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: check_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    problems: list[str] = []
    checked = 0
    for pattern in argv:
        path = pathlib.Path(pattern)
        if not path.exists():
            problems.append(f"{path}: file does not exist")
            continue
        checked += 1
        problems.extend(check_file(path))
    for problem in problems:
        print(problem, file=sys.stderr)
    print(f"checked {checked} files: {len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
