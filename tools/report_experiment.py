#!/usr/bin/env python3
"""Turn a telemetry dump into a ``results/`` dashboard.

Two modes:

* ``--input DUMP.json`` — render a dashboard from an existing
  :meth:`ExperimentTelemetry.write` dump.
* ``--run SCENARIO`` — run one of the netsim experiments with telemetry
  enabled, write the dump, then render the dashboard.

The dashboard is plain text: aligned tables (counters, gauges, histogram
quantiles) plus ASCII sparklines for histogram bucket shapes and trace
span timelines, so experiment output stays reviewable in a terminal or a
CI artifact without plotting dependencies.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Any

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.analysis import render_table, sparkline
from repro.telemetry.registry import Histogram

SCENARIOS = ("contention", "flex_market", "auction", "path")


def _labels_str(labelnames: list[str], labels: list[str]) -> str:
    if not labelnames:
        return "-"
    return ",".join(f"{n}={v}" for n, v in zip(labelnames, labels))


def _rebuild_histogram(buckets: list[float], child: dict[str, Any]) -> Histogram:
    histogram = Histogram(np.asarray(buckets, dtype=np.float64))
    histogram.counts[:] = np.asarray(child["counts"], dtype=np.int64)
    histogram.sum = child["sum"]
    histogram.count = child["count"]
    return histogram


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _metrics_sections(metrics: list[dict[str, Any]]) -> list[str]:
    sections: list[str] = []
    for kind, title in (("counter", "Counters"), ("gauge", "Gauges")):
        rows = [
            [family["name"], _labels_str(family["labelnames"], child["labels"]), _fmt(child["value"])]
            for family in metrics
            if family["kind"] == kind
            for child in family["children"]
        ]
        if rows:
            sections.append(render_table(["metric", "labels", "value"], rows, title=f"## {title}"))
    histogram_rows = []
    for family in metrics:
        if family["kind"] != "histogram":
            continue
        for child in family["children"]:
            histogram = _rebuild_histogram(family["buckets"], child)
            histogram_rows.append(
                [
                    family["name"],
                    _labels_str(family["labelnames"], child["labels"]),
                    str(histogram.count),
                    _fmt(histogram.quantile(0.5)),
                    _fmt(histogram.quantile(0.99)),
                    sparkline([float(c) for c in histogram.counts], width=24),
                ]
            )
    if histogram_rows:
        sections.append(
            render_table(
                ["histogram", "labels", "count", "p50", "p99", "buckets"],
                histogram_rows,
                title="## Histograms",
            )
        )
    return sections


def _trace_sections(traces: list[dict[str, Any]]) -> list[str]:
    sections: list[str] = []
    for trace in traces:
        spans = trace.get("spans", [])
        if not spans:
            continue
        origin = min(span["start"] for span in spans)
        rows = []
        for span in spans:
            attrs = ", ".join(f"{k}={v}" for k, v in span.get("attrs", {}).items())
            if len(attrs) > 72:
                attrs = attrs[:69] + "..."
            duration = span.get("duration")
            # Zero-duration spans are lifecycle events (path.commit,
            # path_bid.settled, ...): mark them so the timed protocol
            # phases stand out in the timeline.
            rows.append(
                [
                    f"+{span['start'] - origin:.4f}s",
                    "·" if not duration else f"{duration * 1e3:.2f}ms",
                    span["name"],
                    attrs,
                ]
            )
        timeline = sparkline([span["start"] - origin for span in spans], width=48)
        header = (
            f"## Trace {trace.get('trace_id', '?')} ({trace.get('name', '')}) "
            f"— {len(spans)} spans   {timeline}"
        )
        sections.append(
            render_table(["offset", "dur", "span", "attributes"], rows, title=header)
        )
    return sections


def _extra_section(extra: dict[str, Any]) -> list[str]:
    if not extra:
        return []
    return ["## Scenario results\n" + json.dumps(extra, indent=2, sort_keys=True)]


def render_dashboard(dump: dict[str, Any]) -> str:
    sections = [f"# Experiment dashboard: {dump.get('scenario', 'unknown')}"]
    sections.extend(_metrics_sections(dump.get("metrics", [])))
    sections.extend(_trace_sections(dump.get("traces", [])))
    sections.extend(_extra_section(dump.get("extra", {})))
    return "\n\n".join(sections) + "\n"


def _run_scenario(name: str, duration: float, buyers: int):
    from repro.netsim.scenarios import (
        auction_experiment,
        contention_experiment,
        flex_market_experiment,
        linear_path,
        path_contention_experiment,
    )
    from repro.telemetry import ExperimentTelemetry

    topology, path = linear_path(3)
    telemetry = ExperimentTelemetry(f"{name}_experiment")
    if name == "contention":
        contention_experiment(topology, path, num_buyers=buyers, duration=duration, telemetry=telemetry)
    elif name == "flex_market":
        # Builds its own chain topology; num_ases is the only shape knob.
        flex_market_experiment(num_ases=3, duration=duration, telemetry=telemetry)
    elif name == "auction":
        auction_experiment(topology, path, num_buyers=buyers, duration=duration, telemetry=telemetry)
    elif name == "path":
        path_contention_experiment(topology, path, num_buyers=buyers, telemetry=telemetry)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(f"unknown scenario {name!r}")
    return telemetry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--input", type=pathlib.Path, help="existing telemetry dump (JSON)")
    source.add_argument("--run", choices=SCENARIOS, help="run a netsim scenario with telemetry")
    parser.add_argument("--out", type=pathlib.Path, default=REPO_ROOT / "results",
                        help="output directory (default: results/)")
    parser.add_argument("--duration", type=float, default=1.0, help="simulated seconds for --run")
    parser.add_argument("--buyers", type=int, default=6, help="buyers/probes for --run")
    args = parser.parse_args(argv)

    args.out.mkdir(parents=True, exist_ok=True)
    if args.run:
        telemetry = _run_scenario(args.run, args.duration, args.buyers)
        dump_path = args.out / f"{args.run}_telemetry.json"
        telemetry.write(dump_path)
        print(f"telemetry dump: {dump_path}")
        dump = telemetry.to_dict()
        stem = args.run
    else:
        dump = json.loads(args.input.read_text())
        stem = args.input.stem.removesuffix("_telemetry")

    dashboard = render_dashboard(dump)
    report_path = args.out / f"{stem}_dashboard.txt"
    report_path.write_text(dashboard)
    print(f"dashboard: {report_path}")
    print()
    print(dashboard)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
