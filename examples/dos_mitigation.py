#!/usr/bin/env python3
"""Adversarial scenarios from the security analysis (§5).

Four attacks against the data plane, each checked against the property the
paper claims:

* **D1 — spoofing**: forged authentication tags are dropped (the candidate
  hop-field MAC comes out wrong);
* **D1 — pre-start use**: a reservation cannot be used before its start
  time — lying about ResStart changes the derived key and the packet is
  dropped;
* **D1 — overuse**: traffic beyond the reserved bandwidth is demoted to
  best effort (never dropped: benign bursts must not fall below best
  effort, §4.3 step 5);
* **D2 — reservation stealing**: replaying a valid tag towards a different
  destination fails, because the destination address is MAC-bound.

Run:  python examples/dos_mitigation.py
"""

from copy import deepcopy

from repro.hummingbird import HummingbirdRouter, HummingbirdSource
from repro.netsim import SIM_PRF, linear_path
from repro.clock import SimClock
from repro.scion import HostAddr, ScionAddr, as_crossings
from repro.scion.router import Action
from repro.hummingbird.reservation import ResInfo, grant_reservation
from repro.wire import bwcls


def setup(bandwidth_kbps: int = 1_000):
    clock = SimClock(1_700_000_000.0)
    topology, path = linear_path(3, prf_factory=SIM_PRF)
    crossings = as_crossings(path)
    start = int(clock.now()) - 10
    reservations = []
    for index, crossing in enumerate(crossings):
        resinfo = ResInfo(
            ingress=crossing.ingress, egress=crossing.egress, res_id=index,
            bw_cls=bwcls.encode_ceil(bandwidth_kbps), start=start, duration=3600,
        )
        reservations.append(
            grant_reservation(
                crossing.isd_as, topology.as_of(crossing.isd_as).secret_value,
                resinfo, SIM_PRF,
            )
        )
    src = ScionAddr(path.src, HostAddr.from_string("10.0.0.1"))
    dst = ScionAddr(path.dst, HostAddr.from_string("10.0.0.2"))
    source = HummingbirdSource(src, dst, path, reservations, clock, SIM_PRF)
    router = HummingbirdRouter(topology.as_of(path.src), clock, SIM_PRF)
    return clock, topology, path, reservations, source, router


def attack_spoofed_tag() -> None:
    _, _, _, _, source, router = setup()
    packet = source.build_packet(b"x" * 200)
    hop = packet.path.segments[0].hopfields[0]
    hop.mac = bytes(b ^ 0xFF for b in hop.mac)  # forge the AggMAC
    decision = router.process(packet, 0)
    print(f"spoofed tag           -> {decision.action.value:18} ({decision.reason})")
    assert decision.action is Action.DROP


def attack_before_start() -> None:
    from repro.hummingbird import FlyoverReservation

    clock, topology, path, _, _, router = setup()
    crossings = as_crossings(path)
    future = int(clock.now()) + 1000  # reservation starts in the future
    real = []
    for index, crossing in enumerate(crossings):
        resinfo = ResInfo(
            ingress=crossing.ingress, egress=crossing.egress, res_id=index,
            bw_cls=bwcls.encode_ceil(1000), start=future, duration=600,
        )
        real.append(
            grant_reservation(
                crossing.isd_as, topology.as_of(crossing.isd_as).secret_value,
                resinfo, SIM_PRF,
            )
        )
    src = ScionAddr(path.src, HostAddr.from_string("10.0.0.1"))
    dst = ScionAddr(path.dst, HostAddr.from_string("10.0.0.2"))
    try:
        HummingbirdSource(src, dst, path, real, clock, SIM_PRF)
        print("pre-start use          -> source accepted (BUG)")
        return
    except ValueError:
        pass  # honest stack refuses: the unsigned offset cannot encode it
    # The adversary holds the real key (delivered ahead of time, §3.3) and
    # LIES about ResStart so the offset becomes encodable:
    lied = [
        FlyoverReservation(
            isd_as=r.isd_as,
            resinfo=ResInfo(
                ingress=r.resinfo.ingress, egress=r.resinfo.egress,
                res_id=r.resinfo.res_id, bw_cls=r.resinfo.bw_cls,
                start=int(clock.now()) - 1,  # the lie
                duration=r.resinfo.duration,
            ),
            auth_key=r.auth_key,  # the real key, for the real start time
        )
        for r in real
    ]
    source = HummingbirdSource(src, dst, path, lied, clock, SIM_PRF)
    packet = source.build_packet(b"x" * 200)
    decision = router.process(packet, 0)
    print(
        f"pre-start use         -> {decision.action.value:18} "
        "(lying about ResStart changes the derived key A_K)"
    )
    assert decision.action is Action.DROP


def attack_overuse() -> None:
    clock, _, _, _, source, router = setup(bandwidth_kbps=100)  # tiny reservation
    verdicts = []
    for index in range(30):
        packet = source.build_packet(b"y" * 500)
        decision = router.process(packet, 0)
        verdicts.append(decision.action)
        clock.advance(0.001)  # 500 B/ms = 4 Mbps >> 100 kbps reserved
    priority = sum(1 for v in verdicts if v is Action.FORWARD_PRIORITY)
    demoted = sum(1 for v in verdicts if v is Action.FORWARD)
    print(
        f"overuse (40x reserved) -> {priority} prioritized, {demoted} demoted "
        "to best effort, 0 dropped (D1: policed, never punished)"
    )
    assert demoted > 0 and priority + demoted == len(verdicts)


def attack_reservation_stealing() -> None:
    clock, topology, path, reservations, source, router = setup()
    packet = source.build_packet(b"z" * 300)
    stolen = deepcopy(packet)
    # The thief redirects the packet to its own host: same AS, new address.
    stolen.dst = ScionAddr(stolen.dst.isd_as, HostAddr.from_string("66.6.6.6"))
    legit = router.process(packet, 0)
    # Same-destination replay is the residual risk; different destination...
    clock.advance(0.0)
    thief = HummingbirdRouter(topology.as_of(path.src), clock, SIM_PRF)
    decision = thief.process(stolen, 0)
    print(
        f"stealing (new dst host) -> {decision.action.value:18} "
        "(host addr not MAC-bound; AS-level dst is)"
    )
    # Changing the destination AS breaks the tag outright:
    stolen_as = deepcopy(source.build_packet(b"z" * 300))
    from repro.scion.addresses import IsdAs

    stolen_as.dst = ScionAddr(IsdAs(1, 999), stolen_as.dst.host)
    decision = thief.process(stolen_as, 0)
    print(f"stealing (new dst AS)  -> {decision.action.value:18} ({decision.reason})")
    assert decision.action is Action.DROP


def main() -> None:
    attack_spoofed_tag()
    attack_before_start()
    attack_overuse()
    attack_reservation_stealing()
    print("all adversarial outcomes match the security analysis (§5.4)")


if __name__ == "__main__":
    main()
