#!/usr/bin/env python3
"""Buy the valley, not the peak: price-reactive purchasing with flex.

PR 1 made posted prices respond to scarcity; this example shows the v2
host API *reacting* to those prices.  A crowd buys out one peak window at
the base price, every AS restocks the peak at its scarcity-adjusted quote,
and then two probe buyers request the same 10-minute reservation:

* the zero-flex probe must take the peak window and pays the premium;
* the probe with 30 minutes of start-time slack lets the
  ``PurchasePlanner`` slide its window into the post-peak valley and pays
  the base price for identical bandwidth.

Both probes' reservations are then exercised on the data plane against a
best-effort flood — a valley reservation protects its flow exactly like a
peak one, it is just cheaper.

Run:  python examples/flex_purchase.py
"""

from repro.analysis import line_plot, render_comparison
from repro.netsim.scenarios import flex_market_experiment


def main() -> None:
    result = flex_market_experiment(flex_values=(0, 1800), duration=1.0)

    peak_start, peak_end = result.peak_window
    print(
        f"peak window [{peak_start}, {peak_end}) sold out and restocked at "
        f"{result.peak_price_micromist} µMIST/unit "
        f"(base price {result.base_price_micromist})\n"
    )

    rows = []
    for buyer in result.buyers:
        rows.append(
            [
                buyer.buyer,
                f"{buyer.flex_start}s",
                f"+{buyer.offset}s",
                "peak" if buyer.start < peak_end else "valley",
                f"{buyer.paid_price_mist}",
                f"{buyer.metrics['goodput_mbps']:.2f}",
            ]
        )
    print(
        render_comparison(
            ["buyer", "flex", "shift", "window", "paid (MIST)", "goodput (Mbps)"],
            rows,
            title="Same reservation, different flexibility",
            note="goodput measured through a 2x-overload best-effort flood; "
            "the valley buyer pays the base price for identical protection.",
        )
    )

    curve = {
        time - peak_start: price
        for time, price in zip(result.curve_times, result.curve_prices)
        if price != float("inf")
    }
    print()
    print(
        line_plot(
            {"cheapest quote": sorted(curve.items())},
            title="probe-sized quote [MIST] vs window start [s after peak opens]",
            x_label="start offset",
            y_label="MIST",
        )
    )
    saved = result.buyers[0].paid_price_mist - result.buyers[-1].paid_price_mist
    print(
        f"\nflexibility saved {saved} MIST "
        f"({saved / result.buyers[0].paid_price_mist:.0%} of the peak price) — "
        "hosts that can wait smooth the demand curve instead of paying it."
    )


if __name__ == "__main__":
    main()
