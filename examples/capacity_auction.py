#!/usr/bin/env python3
"""Capacity auction: watch prices rise as an interface fills.

The admission subsystem gives every AS a per-interface capacity calendar
and a scarcity pricer.  This example deploys a market where each AS's
physical interface capacity is 10x the first issued asset, then has one AS
keep minting same-window slices on a single ingress interface:

* each successive listing clears admission against the *issued* calendar;
* the posted price is the base price times the scarcity multiplier, so the
  quotes climb along the ``1 + alpha * u^2 / (1 - u)`` curve;
* when the calendar is full, the next issuance is rejected outright — the
  interface can never be oversold, no matter how eager the seller.

Run:  python examples/capacity_auction.py
"""

from repro.admission import AdmissionRejected, ScarcityPricer
from repro.analysis import line_plot, render_comparison
from repro.clock import SimClock
from repro.controlplane import deploy_market
from repro.scion import linear_topology

SLICE_KBPS = 1_000_000  # 1 Gbps per issued slice
CAPACITY_KBPS = 10_000_000  # 10 Gbps physical interface
BASE_PRICE = 50  # micromist per kbps-second on an empty interface


def main() -> None:
    clock = SimClock(1_700_000_000.0)
    topology = linear_topology(2)
    deployment = deploy_market(
        topology,
        clock=clock,
        asset_duration=3600,
        asset_bandwidth_kbps=SLICE_KBPS,
        interface_capacity_kbps=CAPACITY_KBPS,
        pricer=ScarcityPricer(),
    )
    seller = deployment.service(topology.ases[0].isd_as)
    start = int(clock.now())
    window = (start, start + 3600)

    print(
        f"AS {seller.isd_as} sells 1 Gbps x 1 h slices of a 10 Gbps interface; "
        "the deployment already listed the first slice.\n"
    )
    rows = []
    curve = {}
    utilization = seller.admission.utilization(1, True, *window)
    rows.append(["1 (deploy)", f"{utilization:.0%}", BASE_PRICE, "listed"])
    curve[round(utilization * 10)] = float(BASE_PRICE)

    slice_number = 2
    while True:
        utilization = seller.admission.utilization(1, True, *window)
        quote = seller.admission.quote(BASE_PRICE, 1, True, *window)
        try:
            submitted = seller.issue_and_list(
                deployment.marketplace, 1, True, SLICE_KBPS, *window, BASE_PRICE
            )
        except AdmissionRejected as rejection:
            rows.append([str(slice_number), f"{utilization:.0%}", quote, "REJECTED"])
            print(render_comparison(
                ["slice", "utilization", "price (µMIST/unit)", "outcome"],
                rows,
                title="Scarcity pricing on one ingress interface",
                note="price = base x (1 + 0.5 u^2 / (1 - u)); admission "
                "rejects anything past 100% utilization.",
            ))
            print(f"\nslice {slice_number} bounced: {rejection}")
            break
        assert submitted.effects.ok
        rows.append([str(slice_number), f"{utilization:.0%}", quote, "listed"])
        curve[round(utilization * 10)] = float(quote)
        slice_number += 1

    print()
    print(line_plot(
        {"listing price": sorted(curve.items())},
        title="posted price [µMIST/unit] vs utilization [tenths]",
        x_label="utilization/10%",
        y_label="price",
    ))
    full = seller.admission.utilization(1, True, *window)
    print(
        f"\nfinal state: interface at {full:.0%} of {CAPACITY_KBPS // 1_000_000} Gbps, "
        f"{seller.admission.rejections} issuance(s) rejected — the AS cannot "
        "oversell the link, and the market rations the last gigabit by price."
    )


if __name__ == "__main__":
    main()
