#!/usr/bin/env python3
"""Bandwidth-market mechanics: splitting, fusing, reselling, atomicity.

Demonstrates the control-plane economics of §4.2 on a 3-core-AS mesh:

* an AS issues ONE large asset per interface and lists it; buyers carve
  arbitrary (time x bandwidth) rectangles out of it;
* a reseller buys a large block cheap, splits it in time, and re-lists the
  halves at a markup — assets are freely tradable;
* two hosts buy disjoint rectangles of the same original asset;
* discovery runs through the v2 API: a declarative ``ListingQuery``
  against the incremental ``MarketIndexer``, ``PathSpec`` purchase plans,
  and a client-side budget guard that refuses over-budget submissions;
* an atomic multi-hop purchase aborts when one hop is unavailable and the
  buyer's coin balance is untouched (the atomicity property).

Run:  python examples/bandwidth_market.py
"""

from repro.clock import SimClock
from repro.contracts.coin import coin_balance
from repro.controlplane import BudgetExceeded, deploy_market, purchase_path
from repro.ledger.transactions import Command, Transaction
from repro.marketdata import ListingQuery, PathSpec
from repro.scion import PathLookup, as_crossings, core_mesh_topology, run_beaconing


def main() -> None:
    clock = SimClock(1_700_000_000.0)
    topology = core_mesh_topology(num_cores=3, children_per_core=2)
    deployment = deploy_market(topology, clock=clock, asset_duration=7200)
    store = run_beaconing(topology, timestamp=int(clock.now()))
    lookup = PathLookup(store)

    leaves = [a.isd_as for a in topology.ases if not a.is_core]
    src, dst = leaves[0], leaves[-1]
    paths = lookup.find_paths(src, dst, max_paths=8)
    print(f"{len(paths)} paths between {src} and {dst} (market substitutes, §5.3)")

    path = paths[0]
    crossings = as_crossings(path)
    start = int(clock.now()) + 120
    start += (60 - start % 60) % 60

    # --- two buyers carve disjoint rectangles from the same listings --------
    alice = deployment.new_host(funding_sui=50, name="alice")
    bob = deployment.new_host(funding_sui=50, name="bob")
    outcome_a = purchase_path(
        deployment, alice, crossings, start, start + 600, bandwidth_kbps=10_000
    )
    # Alice's granule-aligned purchase fragmented the listings; Bob picks a
    # later window that fits inside the re-listed tail remainders.
    outcome_b = purchase_path(
        deployment, bob, crossings, start + 1200, start + 1800, bandwidth_kbps=50_000
    )
    print(
        f"alice reserved 10 Mbps x 10 min on {len(outcome_a.reservations)} hops "
        f"for {outcome_a.price_mist} MIST"
    )
    print(
        f"bob   reserved 50 Mbps x 10 min on {len(outcome_b.reservations)} hops "
        f"for {outcome_b.price_mist} MIST (carved from the same original assets)"
    )

    # --- a reseller splits an owned asset and re-lists at a markup -----------
    # Discovery goes through the incremental off-chain index: a declarative
    # ListingQuery in, the cheapest priced candidate out (no ledger scan).
    reseller = deployment.new_host(funding_sui=200, name="reseller")
    first_as = crossings[0].isd_as
    candidate = deployment.indexer.best(
        ListingQuery(
            isd_as=first_as,
            interface=crossings[0].egress,
            is_ingress=False,
            start=start + 1860,
            expiry=start + 5460,
            bandwidth_kbps=1_000_000,
        )
    )
    if candidate is None:  # best() returns None when nothing covers
        raise SystemExit("no listing covers the reseller's rectangle")
    listing, price, buy_start, buy_expiry = candidate.as_tuple()
    submitted = reseller.executor.submit(
        Transaction(
            sender=reseller.account.address,
            commands=[
                Command("market", "buy", {
                    "marketplace": deployment.marketplace,
                    "listing": listing,
                    "start": buy_start,
                    "expiry": buy_expiry,
                    "bandwidth_kbps": 1_000_000,
                    "payment": reseller.payment_coin,
                }),
            ],
        )
    )
    block = submitted.effects.returns[0]["asset"]
    half = (buy_expiry - buy_start) // 2
    mid = buy_start + half - half % 60  # splits must respect the granularity
    resale = reseller.executor.submit(
        Transaction(
            sender=reseller.account.address,
            commands=[
                Command("asset", "split_time", {"asset": block, "split_at": mid}),
                Command("market", "register_seller", {"marketplace": deployment.marketplace}),
                Command("market", "create_listing", {
                    "marketplace": deployment.marketplace,
                    "asset": block,
                    "price_micromist_per_unit": 90,  # bought at 50, resells at 90
                }),
            ],
        )
    )
    print(
        f"reseller bought a 1 Gbps x 1 h block, split it, re-listed half at "
        f"1.8x markup (tx {'ok' if resale.effects.ok else 'aborted'})"
    )

    # --- budget guard: the client refuses to submit over-budget plans --------
    cheapskate = deployment.new_host(funding_sui=50, name="cheapskate")
    plan = cheapskate.plan_path(
        deployment.marketplace,
        PathSpec.from_crossings(crossings, start + 1200, start + 1800, 10_000),
    )
    try:
        cheapskate.atomic_buy_and_redeem(
            deployment.marketplace, plan, max_price_mist=plan.estimated_price_mist // 2
        )
    except BudgetExceeded as refused:
        print(f"budget guard refused client-side (no gas spent): {refused}")

    # --- atomicity: a failing hop rolls back the whole purchase --------------
    mallory = deployment.new_host(funding_sui=0.0000005, name="mallory")
    before = coin_balance(deployment.ledger, mallory.account.address)
    assets_before = len(mallory.owned_assets())
    plan = mallory.plan_path(
        deployment.marketplace,
        PathSpec.from_crossings(crossings, start + 1200, start + 1800, 10_000),
    )
    submitted = mallory.atomic_buy_and_redeem(deployment.marketplace, plan)
    after = coin_balance(deployment.ledger, mallory.account.address)
    print(
        f"underfunded atomic purchase: status={submitted.effects.status} "
        f"({submitted.effects.error}); balance {before} -> {after} MIST, "
        f"assets {assets_before} -> {len(mallory.owned_assets())} "
        "(nothing charged, nothing granted: all-or-nothing)"
    )


if __name__ == "__main__":
    main()
