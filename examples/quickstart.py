#!/usr/bin/env python3
"""Quickstart: from market deployment to priority forwarding in ~60 lines.

Walks the full Hummingbird workflow on a five-AS chain (the paper's Fig. 1
setting):

1. deploy the control plane (ledger, asset + market contracts, one
   Hummingbird service per AS, assets listed for every interface);
2. discover a path with SCION beaconing and buy reservations for every
   AS hop in ONE atomic buy-and-redeem transaction;
3. send authenticated traffic over the reservations and watch every border
   router verify, police, and forward it with priority.

Run:  python examples/quickstart.py
"""

from repro.clock import SimClock
from repro.controlplane import deploy_market, purchase_path
from repro.hummingbird import HummingbirdRouter, HummingbirdSource
from repro.scion import (
    HostAddr,
    PathLookup,
    ScionAddr,
    as_crossings,
    linear_topology,
    run_beaconing,
)
from repro.scion.router import Action


def main() -> None:
    clock = SimClock(1_700_000_000.0)

    # --- 1. control plane --------------------------------------------------
    topology = linear_topology(5)
    deployment = deploy_market(topology, clock=clock)
    print(f"deployed market with {len(deployment.services)} AS services")

    # --- 2. path discovery + atomic purchase --------------------------------
    store = run_beaconing(topology, timestamp=int(clock.now()))
    src_as = topology.ases[-1].isd_as
    dst_as = topology.ases[0].isd_as
    path = PathLookup(store).find_paths(src_as, dst_as)[0]
    crossings = as_crossings(path)
    print(f"path {src_as} -> {dst_as} crosses {len(crossings)} ASes")

    host = deployment.new_host(funding_sui=100.0)
    start = int(clock.now()) + 60
    deployment.indexer.sync()
    print(
        f"off-chain index tracks {deployment.indexer.count} live listings "
        "(event-driven, no ledger scans); planning against it"
    )
    outcome = purchase_path(
        deployment, host, crossings, start=start, expiry=start + 600,
        bandwidth_kbps=4_000,  # 4 Mbps: a 1080p video call (§4.4)
    )
    print(
        f"atomic buy-and-redeem: {len(outcome.reservations)} reservations, "
        f"gas {outcome.gas.total_sui:.4f} SUI "
        f"({outcome.gas.total_usd:.4f} USD), "
        f"latency {outcome.latency.total:.2f}s "
        f"(request {outcome.latency.request:.2f}s + "
        f"response {outcome.latency.response:.2f}s)"
    )

    # --- 3. data plane --------------------------------------------------------
    clock.set(max(r.resinfo.start for r in outcome.reservations) + 1)
    source = HummingbirdSource(
        ScionAddr(src_as, HostAddr.from_string("10.0.0.1")),
        ScionAddr(dst_as, HostAddr.from_string("10.0.0.2")),
        path,
        outcome.reservations,
        clock,
    )
    routers = {a.isd_as: HummingbirdRouter(a, clock) for a in topology.ases}

    packet = source.build_packet(b"hello, reserved internet!" * 20)
    current, ingress = src_as, 0
    while True:
        decision = routers[current].process(packet, ingress)
        print(f"  {current}: {decision.action.value}")
        if decision.action in (Action.DELIVER, Action.DROP):
            break
        interface = topology.as_of(current).interfaces[decision.egress_ifid]
        current, ingress = interface.neighbor, interface.neighbor_ifid

    flyover_hops = sum(r.stats.flyover_forwarded for r in routers.values())
    print(f"packet crossed {flyover_hops} hops with reserved priority")


if __name__ == "__main__":
    main()
