#!/usr/bin/env python3
"""Sealed-bid window auction end to end: bid, settle, redeem, send packets.

Posted scarcity prices (see ``capacity_auction.py``) make the *operator*
guess the demand curve; a sealed-bid uniform-price auction lets the
bidders reveal it.  This example runs the whole protocol on the ledger:

1. an AS auctions a scarce future window on its bottleneck ingress
   interface (reserve = the scarcity-adjusted posted quote);
2. four hosts seal bids with different budgets — nobody sees anyone
   else's price;
3. at the window boundary the AS settles: the contract clears at ONE
   uniform price (the highest losing bid), carves the asset for the
   winners, pays the AS, and refunds every loser atomically;
4. a winner redeems its won asset (plus posted-price pieces for the rest
   of the path) and sends reservation-protected traffic through a
   best-effort flood — the auctioned bandwidth is as real on the data
   plane as any posted purchase.

Run:  python examples/sealed_bid_auction.py
"""

from repro.admission import ScarcityPricer
from repro.analysis import render_comparison
from repro.clock import SimClock
from repro.contracts.coin import coin_balance
from repro.controlplane import deploy_market, purchase_path
from repro.netsim import CbrSource, FloodSource, SIM_PRF, build_path_simulation
from repro.scion import PathLookup, as_crossings, linear_topology, run_beaconing

T0 = 1_700_000_000
BASE_PRICE = 50  # micromist per kbps-second
ASSET_KBPS = 10_000
AUCTION_KBPS = 6_000  # deliberately less than the four bidders demand
BID_KBPS = 2_500
WINDOW = (T0 + 3600, T0 + 4200)  # the scarce future window up for auction


def main() -> None:
    clock = SimClock(float(T0))
    topology = linear_topology(3)
    store = run_beaconing(topology, timestamp=T0, prf_factory=SIM_PRF)
    path = PathLookup(store).find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    crossings = as_crossings(path)
    bottleneck = crossings[1]

    deployment = deploy_market(
        topology,
        clock=clock,
        asset_start=T0,
        asset_duration=3600,
        asset_bandwidth_kbps=ASSET_KBPS,
        interface_capacity_kbps=2 * ASSET_KBPS,
        pricer=ScarcityPricer(),
        prf_factory=SIM_PRF,
        auction_interfaces={(bottleneck.ingress, True)},
    )

    # Posted listings for the demo window everywhere EXCEPT the contended
    # bottleneck ingress — that one goes under the hammer.
    for crossing in crossings:
        service = deployment.service(crossing.isd_as)
        for interface, is_ingress in ((crossing.ingress, True), (crossing.egress, False)):
            if crossing is bottleneck and is_ingress:
                continue
            service.issue_and_list(
                deployment.marketplace, interface, is_ingress,
                ASSET_KBPS, *WINDOW, BASE_PRICE,
            )

    auctioneer = deployment.service(bottleneck.isd_as)
    opened = auctioneer.open_auction(
        deployment.marketplace, bottleneck.ingress, True,
        AUCTION_KBPS, *WINDOW, BASE_PRICE,
    )
    assert opened.effects.ok, opened.effects.error
    auction_id = next(iter(auctioneer.open_auctions))
    record = auctioneer.open_auctions[auction_id]
    print(
        f"AS {auctioneer.isd_as} auctions {AUCTION_KBPS} kbps x "
        f"[{WINDOW[0]}, {WINDOW[1]}) on ingress if={bottleneck.ingress}, "
        f"reserve {record.reserve_micromist_per_unit} µMIST/unit\n"
    )

    # -- sealed bids: four hosts, four private budgets ----------------------
    budgets_mist = [9_000, 6_000, 4_500, 1_500]
    hosts = []
    for index, budget in enumerate(budgets_mist):
        host = deployment.new_host(name=f"bidder-{index}")
        before = coin_balance(deployment.ledger, host.account.address)
        placed = host.place_bid(deployment.marketplace, auction_id, BID_KBPS, budget)
        assert placed.effects.ok, placed.effects.error
        hosts.append((host, budget, before))

    # -- settle at the window boundary --------------------------------------
    clock.set(float(WINDOW[0]))
    settlement = auctioneer.settle_due_auctions()[0]
    rows = []
    winner_host = None
    for host, budget, before in hosts:
        outcome = host.await_settle(deployment.marketplace, auction_id)
        after = coin_balance(deployment.ledger, host.account.address)
        if outcome.won and winner_host is None:
            winner_host = host
        rows.append(
            [
                host.account.name,
                f"{budget}",
                "WON" if outcome.won else "lost",
                f"{outcome.paid_mist}",
                f"{before - after}",
            ]
        )
    print(
        render_comparison(
            ["bidder", "sealed budget (MIST)", "outcome", "paid (MIST)", "net cost"],
            rows,
            title=f"Uniform-price settlement: everyone pays "
            f"{settlement.clearing_price_micromist} µMIST/unit",
            note="winners pay the highest LOSING bid, not their own; losers "
            "are refunded in the same transaction as the awards.",
        )
    )
    print(
        f"\nAS proceeds: {settlement.proceeds_mist} MIST; "
        f"awarded {settlement.awarded_kbps}/{AUCTION_KBPS} kbps; remainder "
        + ("re-listed at the reserve price" if settlement.listing else "fully sold")
    )

    # -- redeem: auction piece + posted egress, rest of the path posted ------
    won_asset = winner_host.await_settle(deployment.marketplace, auction_id).assets[0]
    egress_buy = winner_host.acquire(
        deployment.marketplace, bottleneck.isd_as, bottleneck.egress, False,
        *WINDOW, BID_KBPS, max_price_mist=10_000_000,
    )
    assert egress_buy.mode == "bought" and egress_buy.submitted.effects.ok
    redeemed = winner_host.redeem_pair(
        won_asset, egress_buy.submitted.effects.returns[0]["asset"]
    )
    assert redeemed.effects.ok, redeemed.effects.error
    auctioneer.poll_and_deliver()
    bottleneck_reservations = winner_host.collect_reservations()

    other = purchase_path(
        deployment,
        winner_host,
        [crossing for crossing in crossings if crossing is not bottleneck],
        start=WINDOW[0],
        expiry=WINDOW[1],
        bandwidth_kbps=BID_KBPS,
    )
    reservations = bottleneck_reservations + other.reservations
    print(
        f"\n{winner_host.account.name} redeemed the won asset: "
        f"{len(reservations)} per-AS reservations cover the whole path"
    )

    # -- data plane: the auctioned bandwidth survives a flood ----------------
    simulation = build_path_simulation(
        topology, path, start_time=float(WINDOW[0]) + 0.1, prf_factory=SIM_PRF
    )
    victim_metrics = simulation.sink.flow(1)
    victim = CbrSource(
        simulation.loop,
        simulation.hummingbird_source(reservations),
        simulation.entry,
        victim_metrics,
        rate_bps=2_000_000.0,
        payload_bytes=1000,
        flow_id=1,
    )
    flood_metrics = simulation.sink.flow(2)
    flood = FloodSource(
        simulation.loop,
        simulation.best_effort_source(),
        simulation.entry,
        flood_metrics,
        rate_bps=20_000_000.0,
        payload_bytes=1000,
        flow_id=2,
    )
    victim.start(0.0)
    flood.start(0.05)
    simulation.loop.run_until(simulation.clock.now() + 1.0)
    victim.stop()
    flood.stop()
    summary = victim_metrics.summary()
    print(
        f"through a 2x-overload flood the winner keeps "
        f"{summary['goodput_mbps']:.2f} Mbps goodput "
        f"(p99 latency {summary['p99_ms']:.1f} ms) — "
        "auction-won bandwidth is first-class on the data plane."
    )


if __name__ == "__main__":
    main()
