#!/usr/bin/env python3
"""Bidirectional reservations (Appendix C): client pays for both directions.

A client wants QoS for a video call: traffic must be protected client →
server *and* server → client.  Reservations are unidirectional, but the
control plane is identity-free, so the client simply:

1. buys reservations for the forward path (client → server);
2. buys reservations for the reverse path (server → client) — billed to
   the client, usable by the server;
3. hands the reverse reservations to the server in a sealed bundle;
4. both sides send prioritized traffic.

Run:  python examples/bidirectional_reservation.py
"""

import random

from repro.clock import SimClock
from repro.controlplane import deploy_market, purchase_path
from repro.crypto.sealing import KeyPair
from repro.hummingbird import HummingbirdRouter, HummingbirdSource, ReservationHandoff
from repro.scion import (
    HostAddr,
    PathLookup,
    ScionAddr,
    as_crossings,
    linear_topology,
    run_beaconing,
)
from repro.scion.router import Action


def walk(topology, routers, packet, start_as):
    current, ingress = start_as, 0
    actions = []
    while True:
        decision = routers[current].process(packet, ingress)
        actions.append(decision.action)
        if decision.action in (Action.DELIVER, Action.DROP):
            return actions
        interface = topology.as_of(current).interfaces[decision.egress_ifid]
        current, ingress = interface.neighbor, interface.neighbor_ifid


def main() -> None:
    clock = SimClock(1_700_000_000.0)
    topology = linear_topology(4)
    deployment = deploy_market(topology, clock=clock)
    store = run_beaconing(topology, timestamp=int(clock.now()))
    lookup = PathLookup(store)

    client_as = topology.ases[-1].isd_as
    server_as = topology.ases[0].isd_as
    forward_path = lookup.find_paths(client_as, server_as)[0]
    reverse_path = lookup.find_paths(server_as, client_as)[0]

    client = deployment.new_host(funding_sui=100, name="client")
    start = int(clock.now()) + 60
    forward = purchase_path(
        deployment, client, as_crossings(forward_path), start, start + 600, 4_000
    )
    backward = purchase_path(
        deployment, client, as_crossings(reverse_path), start, start + 600, 4_000
    )
    print(
        f"client bought {len(forward.reservations)} forward + "
        f"{len(backward.reservations)} reverse reservations "
        f"(both billed to the client)"
    )

    # Hand the reverse reservations to the server, sealed to its keypair.
    rng = random.Random(99)
    server_keys = KeyPair.generate(rng)
    handoff = ReservationHandoff.create(backward.reservations, server_keys.public, rng)
    server_reservations = handoff.open(server_keys)
    print(f"server decrypted {len(server_reservations)} reverse reservations")

    # Both directions now flow with priority.
    clock.set(start + 1)
    routers = {a.isd_as: HummingbirdRouter(a, clock) for a in topology.ases}
    client_addr = ScionAddr(client_as, HostAddr.from_string("10.0.0.1"))
    server_addr = ScionAddr(server_as, HostAddr.from_string("10.0.0.2"))

    up = HummingbirdSource(client_addr, server_addr, forward_path,
                           forward.reservations, clock)
    down = HummingbirdSource(server_addr, client_addr, reverse_path,
                             server_reservations, clock)

    up_actions = walk(topology, routers, up.build_packet(b"request " * 50), client_as)
    down_actions = walk(topology, routers, down.build_packet(b"reply " * 100), server_as)
    print(
        f"client->server: {[a.value for a in up_actions]}\n"
        f"server->client: {[a.value for a in down_actions]}"
    )
    assert all(a in (Action.FORWARD_PRIORITY, Action.DELIVER) for a in up_actions)
    assert all(a in (Action.FORWARD_PRIORITY, Action.DELIVER) for a in down_actions)
    print("bidirectional QoS established; both directions prioritized")


if __name__ == "__main__":
    main()
