#!/usr/bin/env python3
"""Video call under a DDoS flood: the QoS experiment (property D2).

The paper's motivating scenario (§1): an important video call must survive
congestion.  We simulate a 4 Mbps video call over a 6-AS path whose 20 Mbps
bottleneck gets flooded by a best-effort adversary at 3x the link rate, and
compare three configurations:

* best effort only — the call competes with the flood and collapses;
* full-path reservation — every AS hop reserved: goodput and latency hold;
* partial reservation — only the congested hop reserved (§3.1,
  "composable flyovers"): protection where it matters, at a fraction of
  the cost.

Run:  python examples/video_call_qos.py
"""

from repro.analysis import render_table
from repro.netsim import CbrSource, FloodSource, build_path_simulation, linear_path
from repro.netsim.scenarios import SIM_PRF

CALL_RATE = 4_000_000.0  # 4 Mbps 1080p call (§4.4)
LINK_RATE = 20_000_000.0
FLOOD_RATE = 60_000_000.0
DURATION = 3.0


def run_call(protection: str) -> dict:
    topology, path = linear_path(6)
    # The first inter-AS link is the 20 Mbps bottleneck; the rest are fast.
    rates = [LINK_RATE] + [100_000_000.0] * 4
    simulation = build_path_simulation(topology, path, link_rates=rates)
    start = int(simulation.clock.now())

    if protection == "none":
        builder = simulation.best_effort_source()
    else:
        reservations = simulation.grant_full_path(
            bandwidth_kbps=5_000, start=start, duration=600
        )
        if protection == "partial":
            # Keep only the flyover at the bottleneck AS (first hop).
            reservations = reservations[:1]
        builder = simulation.hummingbird_source(reservations)

    call_metrics = simulation.sink.flow(1)
    call = CbrSource(
        simulation.loop, builder, simulation.entry, call_metrics,
        rate_bps=CALL_RATE, payload_bytes=1200, flow_id=1, jitter=0.05,
    )
    flood = FloodSource(
        simulation.loop, simulation.best_effort_source(), simulation.entry,
        simulation.sink.flow(2), rate_bps=FLOOD_RATE, payload_bytes=1200, flow_id=2,
    )
    call.start(0.0)
    flood.start(0.2)
    simulation.loop.run_until(simulation.clock.now() + DURATION)
    return call_metrics.summary()


def main() -> None:
    rows = []
    for protection, label in (
        ("none", "best effort"),
        ("partial", "bottleneck-hop flyover"),
        ("full", "full-path reservation"),
    ):
        summary = run_call(protection)
        rows.append(
            [
                label,
                f"{summary['goodput_mbps']:.2f}",
                f"{100 * summary['loss_rate']:.1f}%",
                f"{summary['p50_ms']}",
                f"{summary['p99_ms']}",
            ]
        )
    print(
        render_table(
            ["protection", "goodput Mbps", "loss", "p50 ms", "p99 ms"],
            rows,
            title=f"4 Mbps video call vs {FLOOD_RATE/1e6:.0f} Mbps flood "
            f"on a {LINK_RATE/1e6:.0f} Mbps bottleneck (QoS property D2)",
        )
    )


if __name__ == "__main__":
    main()
